package engine

import (
	"repro/internal/core"
	"repro/internal/si"
)

// Allocator is a buffer allocation scheme: how large the next buffer is,
// what size worst-case service planning should assume, and whether the
// scheme's admission rules allow one more request. The paper's three
// schemes — static (Section 2.3), dynamic (Section 3, the contribution),
// and the naive strawman (Section 3.1) — plus the DYBASE precursor are
// provided; an Allocator is chosen per engine System via Config.
//
// Size may record per-allocation bookkeeping on the disk (the dynamic
// scheme's inertia snapshot and prediction-success entry); Admit and
// PlanSize must not mutate anything other than the disk's k_log cache.
type Allocator interface {
	// Size computes the buffer size for the next service of st when n
	// requests are in service, recording whatever bookkeeping the scheme
	// needs (inertia snapshots, prediction estimates).
	Size(d *Disk, st *Stream, n int) si.Bits
	// PlanSize is the buffer size worst-case service planning assumes at
	// load n — the term feeding the lazy-start and admission cushions.
	PlanSize(d *Disk, n int) si.Bits
	// Admit reports whether the scheme's runtime enforcement allows
	// admitting one more request when n are in service. Capacity (n < N)
	// is checked by the engine; this is the scheme-specific rule
	// (Assumption 1 for the dynamic scheme, always true otherwise).
	Admit(d *Disk, n int) bool
}

// StaticAllocator always allocates the full-load buffer size BS(N)
// (Section 2.3): correct at any load, maximally wasteful below full load.
type StaticAllocator struct{}

// Size returns BS(N) regardless of load — each rate's own full-load size
// when streams carry per-rate contexts.
func (StaticAllocator) Size(d *Disk, st *Stream, n int) si.Bits {
	if st.ctx != nil {
		return st.ctx.staticSize
	}
	return d.sys.staticSize
}

// PlanSize returns BS(N): static planning assumes the worst everywhere
// (in multi-rate mode, the widest full-load size among the rates in
// service).
func (StaticAllocator) PlanSize(d *Disk, n int) si.Bits {
	if d.sys.multi != nil {
		return d.planOverLive(func(c *rateCtx) si.Bits { return c.staticSize })
	}
	return d.sys.staticSize
}

// Admit always accepts; the capacity bound N is enforced upstream.
func (StaticAllocator) Admit(d *Disk, n int) bool { return true }

// DynamicAllocator is the paper's predict-and-enforce scheme (Section 3):
// buffers sized by Theorem 1 for the current load n and the estimate kc of
// near-future additional requests, with the inertia snapshot recorded for
// runtime enforcement and violating admissions deferred (Fig. 5).
type DynamicAllocator struct{}

// Size evaluates Theorem 1 at (n, kc) with kc from the disk's estimator,
// records the stream's inertia snapshot for enforcement, and logs the
// estimate for prediction-success scoring.
func (DynamicAllocator) Size(d *Disk, st *Stream, n int) si.Bits {
	kc := d.Estimate(n)
	size := d.sizeForStream(st, n, kc)
	d.book.Set(st.id, core.Allocation{N: n, K: kc})
	if d.budget != nil {
		// Churn-safe enforcement: this fill opens a fresh k_i admission
		// budget, charged from the disk's current admission count.
		d.budget.Set(st.id, core.Allocation{N: d.admits, K: kc})
	}
	d.recordEstimate(size, kc)
	return size
}

// PlanSize returns the worst-case buffer size sweep planning must
// assume for a disk at load n under the dynamic scheme's rules.
func (DynamicAllocator) PlanSize(d *Disk, n int) si.Bits {
	// Plan with the Assumption-2 worst future prediction: no service in
	// the batch can allocate with k above min_i(k_i) + alpha (that is what
	// the estimator enforces), exactly the headroom the recurrence's
	// BS_{k+alpha} term models.
	k := d.book.MinK()
	if k > 2*d.sys.params.N {
		k = d.Estimate(n) // empty book: fall back to the estimate
	}
	k += d.sys.params.Alpha
	if d.sys.cfg.RampAwarePlanning {
		// Plan at the admission window's full load, not today's: the
		// enforcement admits up to min_i(n_i+k_i) concurrent streams,
		// and a fill late in the coming round allocates at whatever
		// load the window has reached by then (see
		// Config.RampAwarePlanning).
		if m := d.book.MinNK(); m > n {
			n = m
			if n > d.sys.params.N {
				n = d.sys.params.N
			}
		}
	}
	if d.sys.multi != nil {
		// Multi-rate: the widest size among the rates in service, each
		// at the disk's bandwidth-equivalent load — conservative for
		// every stream the coming round may actually service.
		kk := k
		return d.planOverLive(func(c *rateCtx) si.Bits { return c.table.Size(d.effLoad(c), kk) })
	}
	return d.sys.sizeFor(d, n, k)
}

// Admit applies the Fig. 5 enforcement rule: an arrival may enter only
// if it keeps every in-service stream's inertia snapshot honest (and,
// under churn-safe budgets, every open fill's admission budget).
func (DynamicAllocator) Admit(d *Disk, n int) bool {
	if !core.Admit(d.book, n, d.sys.admitCap) {
		return false
	}
	return d.budget == nil || core.AdmitBudget(d.budget, d.admits)
}

// NaiveAllocator is the flawed strawman of Section 3.1: Eq. 5 evaluated at
// n+k with no recurrence and no enforcement. It underruns under rising
// load — the failure (Fig. 3) that motivates the dynamic scheme.
type NaiveAllocator struct{}

// Size evaluates Eq. 5 directly at n+kc — the flaw: no recurrence, so a
// stream sized now is not protected against arrivals sized later.
func (NaiveAllocator) Size(d *Disk, st *Stream, n int) si.Bits {
	kc := d.Estimate(n)
	var size si.Bits
	if st.ctx == nil {
		size = d.sys.naiveSizeFor(n, kc)
	} else {
		size = d.sys.naiveTabFor(st.ctx).Size(d.effLoad(st.ctx), kc)
	}
	d.recordEstimate(size, kc)
	return size
}

// PlanSize mirrors Size for sweep planning.
func (NaiveAllocator) PlanSize(d *Disk, n int) si.Bits {
	if d.sys.multi != nil {
		k := d.Estimate(n)
		return d.planOverLive(func(c *rateCtx) si.Bits { return d.sys.naiveTabFor(c).Size(d.effLoad(c), k) })
	}
	return d.sys.naiveSizeFor(n, d.Estimate(n))
}

// Admit always accepts — the absent enforcement is the point.
func (NaiveAllocator) Admit(d *Disk, n int) bool { return true }

// DybaseAllocator sizes by the DYBASE recurrence (the paper's cited
// precursor, Information Sciences 137, 2001): Theorem 1's chain with k
// held constant instead of growing by alpha per step, and no runtime
// enforcement. It sits between the naive and dynamic schemes and exists
// for comparison runs.
type DybaseAllocator struct{}

// Size evaluates the DYBASE recurrence at (n, kc).
func (DybaseAllocator) Size(d *Disk, st *Stream, n int) si.Bits {
	kc := d.Estimate(n)
	var size si.Bits
	if st.ctx == nil {
		size = d.sys.dybaseSizeFor(n, kc)
	} else {
		size = d.sys.dybaseTabFor(st.ctx).Size(d.effLoad(st.ctx), kc)
	}
	d.recordEstimate(size, kc)
	return size
}

// PlanSize mirrors Size for sweep planning.
func (DybaseAllocator) PlanSize(d *Disk, n int) si.Bits {
	if d.sys.multi != nil {
		k := d.Estimate(n)
		return d.planOverLive(func(c *rateCtx) si.Bits { return d.sys.dybaseTabFor(c).Size(d.effLoad(c), k) })
	}
	return d.sys.dybaseSizeFor(n, d.Estimate(n))
}

// Admit always accepts: DYBASE has no runtime enforcement.
func (DybaseAllocator) Admit(d *Disk, n int) bool { return true }

// KneeAllocator is the memory-knee-aware fourth scheme (ROADMAP item 3):
// the dynamic scheme's sizing and enforcement with admission capped near
// the Theorem 1 memory knee — by default half the disk's stream capacity
// and, in multi-rate mode, half its transfer rate — so the disk never
// climbs the steep half of the memory curve. It trades peak concurrency
// for per-stream buffers an order of magnitude smaller near the cap, and
// pairs naturally with downgrading admission: capped capacity converts
// into lower rungs instead of rejections.
type KneeAllocator struct {
	DynamicAllocator

	// Fraction positions the cap: admissions stop at Fraction·N committed
	// streams (and Fraction·TR committed bandwidth in multi-rate mode).
	// <= 0 means the knee default 0.5; values above 1 are clamped to 1.
	Fraction float64
}

// admissionCapper lets an allocator lower the engine's admission
// capacities; the engine consults it once at construction.
type admissionCapper interface {
	AdmitCapCount(n int) int
	AdmitCapBandwidth(tr si.BitRate) si.BitRate
}

func (a KneeAllocator) fraction() float64 {
	f := a.Fraction
	if f <= 0 {
		f = 0.5
	}
	if f > 1 {
		f = 1
	}
	return f
}

// AdmitCapCount caps committed streams at ⌊Fraction·n⌋ (floor 1).
func (a KneeAllocator) AdmitCapCount(n int) int {
	c := int(a.fraction() * float64(n))
	if c < 1 {
		c = 1
	}
	if c > n {
		c = n
	}
	return c
}

// AdmitCapBandwidth caps committed consumption bandwidth at Fraction·TR.
func (a KneeAllocator) AdmitCapBandwidth(tr si.BitRate) si.BitRate {
	return si.BitRate(a.fraction() * float64(tr))
}
