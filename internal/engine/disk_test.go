package engine

import (
	"testing"

	"repro/internal/sched"
	"repro/internal/si"
)

func TestFifoOrderAndWrap(t *testing.T) {
	var f fifo[int]
	next, popped := 0, 0
	// Interleave pushes and pops so the ring wraps repeatedly while the
	// FIFO order and indexed access stay correct.
	for round := 0; round < 200; round++ {
		for i := 0; i < 7; i++ {
			f.push(next)
			next++
		}
		for i := 0; i < f.len(); i++ {
			if got := *f.at(i); got != popped+i {
				t.Fatalf("round %d: at(%d) = %d, want %d", round, i, got, popped+i)
			}
		}
		for i := 0; i < 5 && f.len() > 0; i++ {
			if got := *f.front(); got != popped {
				t.Fatalf("round %d: front = %d, want %d", round, got, popped)
			}
			f.popFront()
			popped++
		}
	}
	for f.len() > 0 {
		if got := *f.front(); got != popped {
			t.Fatalf("drain: front = %d, want %d", got, popped)
		}
		f.popFront()
		popped++
	}
	if popped != next {
		t.Fatalf("popped %d of %d pushed", popped, next)
	}
}

// A warmed-up fifo must push and pop without allocating: that is the
// interning property the per-fill bookkeeping logs rely on.
func TestFifoSteadyStateAllocFree(t *testing.T) {
	var f fifo[estEntry]
	for i := 0; i < 64; i++ {
		f.push(estEntry{})
	}
	for f.len() > 0 {
		f.popFront()
	}
	allocs := testing.AllocsPerRun(1000, func() {
		for i := 0; i < 32; i++ {
			f.push(estEntry{start: si.Seconds(i)})
		}
		for f.len() > 0 {
			f.popFront()
		}
	})
	if allocs != 0 {
		t.Errorf("warm fifo push/pop cycle allocates %v objects/op, want 0", allocs)
	}
}

// A drained-out ring far above the shrink threshold releases its backing
// array so a burst cannot pin its high-water memory.
func TestFifoShrinksAfterBurst(t *testing.T) {
	var f fifo[int]
	const burst = 3 * fifoShrinkCap
	for i := 0; i < burst; i++ {
		f.push(i)
	}
	peak := len(f.buf)
	f.popN(burst - 4)
	if len(f.buf) > peak/4 {
		t.Errorf("ring holds %d slots after draining a %d-entry burst, want a tight reallocation", len(f.buf), peak)
	}
	for i := 0; i < 4; i++ {
		if got := *f.at(i); got != burst-4+i {
			t.Fatalf("survivor at(%d) = %d, want %d", i, got, burst-4+i)
		}
	}
}

// A burst of long estimation windows must not pin its high-water memory:
// once the windows close and the logs drain, their capacity shrinks.
func TestEstimateLogsShrinkAfterBurst(t *testing.T) {
	d := harness(t, sched.RoundRobin, DynamicAllocator{})
	vc := d.clock.(*VirtualClock)
	const burst = fifoShrinkCap + fifoShrinkCap/2
	window := si.Seconds(4 * burst)
	size := d.sys.cfg.CR.DataIn(window) // usage period = window
	for i := 0; i < burst; i++ {
		now := si.Seconds(i)
		vc.Run(now)
		d.estArrivals.push(now)
		d.recordEstimate(size, 1)
		d.resolveEstimates(now)
	}
	peakPending, peakArr := len(d.pending.buf), len(d.estArrivals.buf)
	// The arrival at t=0 equals the oldest window's start, which the
	// exclusive lower bound can never count, so it prunes immediately.
	if d.pending.len() != burst || d.estArrivals.len() < burst-1 {
		t.Fatalf("burst did not accumulate: pending %d arrivals %d", d.pending.len(), d.estArrivals.len())
	}
	// All windows close; both logs drain and release their slack.
	vc.Run(si.Seconds(burst) + window + 1)
	d.resolveEstimates(d.now())
	if d.pending.len() != 0 || d.estArrivals.len() != 0 {
		t.Fatalf("logs not drained: pending %d arrivals %d", d.pending.len(), d.estArrivals.len())
	}
	if len(d.pending.buf) > peakPending/4 {
		t.Errorf("pending cap %d after drain, want under a quarter of the %d peak", len(d.pending.buf), peakPending)
	}
	if len(d.estArrivals.buf) > peakArr/4 {
		t.Errorf("estArrivals cap %d after drain, want under a quarter of the %d peak", len(d.estArrivals.buf), peakArr)
	}
}

// Steady-state estimation keeps both logs bounded: a long run at constant
// rate never grows them past the live window's worth of entries.
func TestEstimateLogsBoundedSteadyState(t *testing.T) {
	d := harness(t, sched.RoundRobin, DynamicAllocator{})
	vc := d.clock.(*VirtualClock)
	window := si.Seconds(10)
	size := d.sys.cfg.CR.DataIn(window)
	for i := 0; i < 50000; i++ {
		now := si.Seconds(i)
		vc.Run(now)
		d.estArrivals.push(now)
		d.recordEstimate(size, 1)
		d.resolveEstimates(now)
		if d.pending.len() > 16 || d.estArrivals.len() > 16 {
			t.Fatalf("step %d: pending %d estArrivals %d — logs growing without bound",
				i, d.pending.len(), d.estArrivals.len())
		}
	}
	if len(d.pending.buf) > 64 || len(d.estArrivals.buf) > 64 {
		t.Errorf("rings hold %d/%d slots after a long steady run, want bounded",
			len(d.pending.buf), len(d.estArrivals.buf))
	}
}
