package engine

import (
	"testing"

	"repro/internal/sched"
	"repro/internal/si"
)

func TestCompactTail(t *testing.T) {
	s := make([]int, 1024)
	for i := range s {
		s[i] = i
	}
	s = compactTail(s, 1020)
	if len(s) != 4 || s[0] != 1020 || s[3] != 1023 {
		t.Fatalf("compacted to %v (len %d)", s, len(s))
	}
	if cap(s) != 4 {
		t.Errorf("cap = %d after draining a large slice, want a tight reallocation", cap(s))
	}

	// Small slices are compacted in place: no reallocation churn.
	s2 := make([]int, 100)
	s2 = compactTail(s2, 90)
	if len(s2) != 10 || cap(s2) != 100 {
		t.Errorf("small slice: len %d cap %d, want 10 in the original backing array", len(s2), cap(s2))
	}

	// Above threshold but still mostly full: kept in place too.
	s3 := make([]int, 1024)
	s3 = compactTail(s3, 100)
	if cap(s3) != 1024 {
		t.Errorf("cap = %d, want a mostly-full slice left in place", cap(s3))
	}
}

// A burst of long estimation windows must not pin its high-water memory:
// once the windows close and the logs drain, their capacity shrinks.
func TestEstimateLogsShrinkAfterBurst(t *testing.T) {
	d := harness(t, sched.RoundRobin, DynamicAllocator{})
	vc := d.clock.(*VirtualClock)
	const burst = 5000
	window := si.Seconds(20000)
	size := d.sys.cfg.CR.DataIn(window) // usage period = window
	for i := 0; i < burst; i++ {
		now := si.Seconds(i)
		vc.Run(now)
		d.estArrivals = append(d.estArrivals, now)
		d.recordEstimate(size, 1)
		d.resolveEstimates(now)
	}
	peakPending, peakArr := cap(d.pending), cap(d.estArrivals)
	// The arrival at t=0 equals the oldest window's start, which the
	// exclusive lower bound can never count, so it prunes immediately.
	if len(d.pending) != burst || len(d.estArrivals) < burst-1 {
		t.Fatalf("burst did not accumulate: pending %d arrivals %d", len(d.pending), len(d.estArrivals))
	}
	// All windows close; both logs drain and release their slack.
	vc.Run(si.Seconds(burst) + window + 1)
	d.resolveEstimates(d.now())
	if len(d.pending) != 0 || len(d.estArrivals) != 0 {
		t.Fatalf("logs not drained: pending %d arrivals %d", len(d.pending), len(d.estArrivals))
	}
	if cap(d.pending) > peakPending/4 {
		t.Errorf("pending cap %d after drain, want under a quarter of the %d peak", cap(d.pending), peakPending)
	}
	if cap(d.estArrivals) > peakArr/4 {
		t.Errorf("estArrivals cap %d after drain, want under a quarter of the %d peak", cap(d.estArrivals), peakArr)
	}
}

// Steady-state estimation keeps both logs bounded: a long run at constant
// rate never grows them past the live window's worth of entries.
func TestEstimateLogsBoundedSteadyState(t *testing.T) {
	d := harness(t, sched.RoundRobin, DynamicAllocator{})
	vc := d.clock.(*VirtualClock)
	window := si.Seconds(10)
	size := d.sys.cfg.CR.DataIn(window)
	for i := 0; i < 50000; i++ {
		now := si.Seconds(i)
		vc.Run(now)
		d.estArrivals = append(d.estArrivals, now)
		d.recordEstimate(size, 1)
		d.resolveEstimates(now)
		if len(d.pending) > 16 || len(d.estArrivals) > 16 {
			t.Fatalf("step %d: pending %d estArrivals %d — logs growing without bound",
				i, len(d.pending), len(d.estArrivals))
		}
	}
	if cap(d.pending) > shrinkThreshold*4 || cap(d.estArrivals) > shrinkThreshold*4 {
		t.Errorf("caps %d/%d after a long steady run, want bounded",
			cap(d.pending), cap(d.estArrivals))
	}
}
