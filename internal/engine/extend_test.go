package engine

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/diskmodel"
	"repro/internal/sched"
	"repro/internal/si"
	"repro/internal/workload"
)

// extendRecorder captures the stream lifecycle an Extend reshapes.
type extendRecorder struct {
	NopObserver
	departAt  map[int]si.Seconds
	delivered map[int]si.Bits
}

func (r *extendRecorder) OnDepart(disk int, st *Stream, now si.Seconds) {
	r.departAt[st.ID()] = now
	r.delivered[st.ID()] = st.Delivered()
}

func extendHarness(t *testing.T) (*System, *VirtualClock, *extendRecorder) {
	t.Helper()
	lib, err := catalog.New(catalog.Config{
		Titles: 6, Disks: 1, Spec: diskmodel.Barracuda9LP(), PopularityTheta: 0.271,
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := &extendRecorder{departAt: map[int]si.Seconds{}, delivered: map[int]si.Bits{}}
	clock := NewVirtualClock()
	sys, err := New(Config{
		Clock:     clock,
		Allocator: DynamicAllocator{},
		Method:    sched.NewMethod(sched.RoundRobin),
		Spec:      diskmodel.Barracuda9LP(),
		CR:        si.Mbps(1.5),
		Alpha:     1,
		TLog:      si.Minutes(40),
		Library:   lib,
		Observer:  rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys, clock, rec
}

// Extending a started stream pushes its departure out and raises its
// data requirement: the viewer watches 30 s, then the horizon moves to
// 60 s, and the stream delivers the 60 s requirement before departing
// around the extended instant.
func TestExtendStartedStreamLengthensService(t *testing.T) {
	sys, clock, rec := extendHarness(t)
	req := workload.Request{ID: 1, Video: 0, Disk: 0, Viewing: si.Seconds(30)}
	clock.Schedule(0, func() { sys.OnArrival(req) })
	clock.Schedule(si.Seconds(10), func() {
		if !sys.Disk(0).Extend(1, si.Seconds(60)) {
			t.Error("Extend lost a stream in service")
		}
	})
	clock.Run(si.Minutes(5))
	at, ok := rec.departAt[1]
	if !ok {
		t.Fatal("stream never departed")
	}
	if at < si.Seconds(60) {
		t.Errorf("departed at %v, before the extended 60 s horizon", at)
	}
	want := si.Mbps(1.5).DataIn(si.Seconds(60))
	if got := rec.delivered[1]; got != want {
		t.Errorf("delivered %v, want the extended requirement %v", got, want)
	}
}

// An extension that does not lengthen the viewing is a no-op: the stream
// departs on its original horizon with its original requirement.
func TestExtendNeverShrinks(t *testing.T) {
	sys, clock, rec := extendHarness(t)
	req := workload.Request{ID: 1, Video: 0, Disk: 0, Viewing: si.Seconds(30)}
	clock.Schedule(0, func() { sys.OnArrival(req) })
	clock.Schedule(si.Seconds(5), func() {
		if !sys.Disk(0).Extend(1, si.Seconds(10)) {
			t.Error("Extend lost a stream in service")
		}
	})
	clock.Run(si.Minutes(5))
	want := si.Mbps(1.5).DataIn(si.Seconds(30))
	if got := rec.delivered[1]; got != want {
		t.Errorf("delivered %v after a shorter 'extension', want the original %v", got, want)
	}
	if at := rec.departAt[1]; at < si.Seconds(30) || at > si.Seconds(40) {
		t.Errorf("departed at %v, want near the original 30 s horizon", at)
	}
}

// Extending a request still in the deferral queue raises its viewing in
// place — admission later builds the stream from the widened request —
// and extending an unknown id reports false. The queue is populated by
// hand: a deferred arrival only exists transiently between an
// allocator's Admit refusal and the retry, so the queue-scan branch is
// driven directly, as the scheduler tests drive theirs.
func TestExtendQueuedAndUnknown(t *testing.T) {
	d := harness(t, sched.RoundRobin, DynamicAllocator{})
	d.queue = append(d.queue, queued{req: workload.Request{ID: 81, Viewing: si.Seconds(30)}})
	if !d.Extend(81, si.Seconds(90)) {
		t.Error("Extend lost a queued request")
	}
	if got := d.queue[0].req.Viewing; got != si.Seconds(90) {
		t.Errorf("queued viewing %v after extension, want 90s", got)
	}
	if !d.Extend(81, si.Seconds(10)) {
		t.Error("a shorter extension still finds the queued request")
	}
	if got := d.queue[0].req.Viewing; got != si.Seconds(90) {
		t.Errorf("queued viewing %v shrank; extensions never shrink", got)
	}
	if d.Extend(999, si.Minutes(1)) {
		t.Error("Extend invented an unknown id")
	}
}
