package engine

import (
	"repro/internal/si"
	"repro/internal/workload"
)

// RejectReason classifies why a request was turned away at arrival.
type RejectReason int

const (
	// RejectCapacity means the disk's committed load had reached N.
	RejectCapacity RejectReason = iota
	// RejectMemory means the admission Gate (e.g. the capacity
	// experiments' shared-memory governor) refused the reservation.
	RejectMemory
)

// Observer receives the engine's instrumentation callbacks. Both drivers —
// the simulator collecting a Result and the live server relaying fills to
// TCP viewers — observe the runtime through this one interface, so their
// measurements are definitionally consistent.
//
// Callbacks fire synchronously inside the engine (under the engine lock
// when running on a WallClock) and must not block or re-enter the engine.
// Embed NopObserver to implement only the callbacks you need.
type Observer interface {
	// OnAdmit fires when a request moves from the deferral queue into
	// service (Fig. 5's admission).
	OnAdmit(disk int, st *Stream, now si.Seconds)
	// OnDefer fires when the dynamic scheme's enforcement blocks an
	// admission attempt (one call per blocked attempt, as the paper
	// counts deferrals).
	OnDefer(disk int, now si.Seconds)
	// OnReject fires when an arrival is turned away outright.
	OnReject(disk int, req workload.Request, reason RejectReason, now si.Seconds)
	// OnFill fires when a disk read starts: the service begins at start,
	// occupies the disk for dur, and lands fill bits; deadline is when the
	// stream's buffer runs dry without it.
	OnFill(disk int, st *Stream, start, dur si.Seconds, fill si.Bits, deadline si.Seconds)
	// OnFillComplete fires when the read lands and the data becomes
	// buffer level the viewer can consume.
	OnFillComplete(disk int, st *Stream, fill si.Bits, now si.Seconds)
	// OnStart fires at a stream's first completed fill — the moment that
	// ends its initial latency.
	OnStart(disk int, st *Stream, now si.Seconds)
	// OnStall fires when a fill could not reserve memory under a hard
	// pool budget and the service will retry.
	OnStall(disk int, now si.Seconds)
	// OnEstimate fires when an allocation records a prediction: kc
	// estimated additional requests over the usage period of a buffer of
	// the given size (Fig. 5 Step 4).
	OnEstimate(disk int, kc int, size si.Bits, now si.Seconds)
	// OnEstimateResolved fires when a recorded prediction's usage period
	// closes: hit reports whether kc covered the actual arrivals
	// (Section 5.1's "successful estimation").
	OnEstimateResolved(disk int, hit bool, now si.Seconds)
	// OnUnderrun fires when a started buffer runs dry before its refill —
	// the failure the sizing theorems exist to prevent. id is the starved
	// stream's request ID; gap is how long the viewer starved.
	OnUnderrun(disk int, id int, now, gap si.Seconds)
	// OnDowngrade fires when downgrading admission steps an arrival down
	// its title's bitrate ladder: the requested rung from did not fit the
	// disk's predicted capacity, and the stream will be served at to.
	OnDowngrade(disk int, req workload.Request, from, to si.BitRate, now si.Seconds)
	// OnRateSwitch fires when mid-stream adaptation steps an in-service
	// stream across its title's ladder: the stream consumed at from
	// until now and consumes at to from now on, and its next fill is
	// sized against the new rung's context. During the callback
	// st.RateSince() still reports when the ending from-epoch began
	// (it advances to now right after), so collectors can accrue
	// time-weighted delivered-rung accounting statelessly.
	OnRateSwitch(disk int, st *Stream, from, to si.BitRate, now si.Seconds)
	// OnDepart fires when a stream leaves service and frees its capacity.
	OnDepart(disk int, st *Stream, now si.Seconds)
}

// NopObserver implements Observer with no-ops; embed it to override only
// the callbacks of interest.
type NopObserver struct{}

func (NopObserver) OnAdmit(int, *Stream, si.Seconds)                                 {}
func (NopObserver) OnDefer(int, si.Seconds)                                          {}
func (NopObserver) OnReject(int, workload.Request, RejectReason, si.Seconds)         {}
func (NopObserver) OnFill(int, *Stream, si.Seconds, si.Seconds, si.Bits, si.Seconds) {}
func (NopObserver) OnFillComplete(int, *Stream, si.Bits, si.Seconds)                 {}
func (NopObserver) OnStart(int, *Stream, si.Seconds)                                 {}
func (NopObserver) OnStall(int, si.Seconds)                                          {}
func (NopObserver) OnEstimate(int, int, si.Bits, si.Seconds)                         {}
func (NopObserver) OnEstimateResolved(int, bool, si.Seconds)                         {}
func (NopObserver) OnUnderrun(int, int, si.Seconds, si.Seconds)                      {}
func (NopObserver) OnDowngrade(int, workload.Request, si.BitRate, si.BitRate, si.Seconds) {
}
func (NopObserver) OnRateSwitch(int, *Stream, si.BitRate, si.BitRate, si.Seconds) {}
func (NopObserver) OnDepart(int, *Stream, si.Seconds)                             {}

// Observers fans every callback out to each member in order.
type Observers []Observer

func (o Observers) OnAdmit(disk int, st *Stream, now si.Seconds) {
	for _, ob := range o {
		ob.OnAdmit(disk, st, now)
	}
}
func (o Observers) OnDefer(disk int, now si.Seconds) {
	for _, ob := range o {
		ob.OnDefer(disk, now)
	}
}
func (o Observers) OnReject(disk int, req workload.Request, reason RejectReason, now si.Seconds) {
	for _, ob := range o {
		ob.OnReject(disk, req, reason, now)
	}
}
func (o Observers) OnFill(disk int, st *Stream, start, dur si.Seconds, fill si.Bits, deadline si.Seconds) {
	for _, ob := range o {
		ob.OnFill(disk, st, start, dur, fill, deadline)
	}
}
func (o Observers) OnFillComplete(disk int, st *Stream, fill si.Bits, now si.Seconds) {
	for _, ob := range o {
		ob.OnFillComplete(disk, st, fill, now)
	}
}
func (o Observers) OnStart(disk int, st *Stream, now si.Seconds) {
	for _, ob := range o {
		ob.OnStart(disk, st, now)
	}
}
func (o Observers) OnStall(disk int, now si.Seconds) {
	for _, ob := range o {
		ob.OnStall(disk, now)
	}
}
func (o Observers) OnEstimate(disk int, kc int, size si.Bits, now si.Seconds) {
	for _, ob := range o {
		ob.OnEstimate(disk, kc, size, now)
	}
}
func (o Observers) OnEstimateResolved(disk int, hit bool, now si.Seconds) {
	for _, ob := range o {
		ob.OnEstimateResolved(disk, hit, now)
	}
}
func (o Observers) OnUnderrun(disk int, id int, now, gap si.Seconds) {
	for _, ob := range o {
		ob.OnUnderrun(disk, id, now, gap)
	}
}
func (o Observers) OnDowngrade(disk int, req workload.Request, from, to si.BitRate, now si.Seconds) {
	for _, ob := range o {
		ob.OnDowngrade(disk, req, from, to, now)
	}
}
func (o Observers) OnRateSwitch(disk int, st *Stream, from, to si.BitRate, now si.Seconds) {
	for _, ob := range o {
		ob.OnRateSwitch(disk, st, from, to, now)
	}
}
func (o Observers) OnDepart(disk int, st *Stream, now si.Seconds) {
	for _, ob := range o {
		ob.OnDepart(disk, st, now)
	}
}
