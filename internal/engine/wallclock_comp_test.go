package engine

import (
	"sync"
	"testing"
	"time"

	"repro/internal/si"
)

// The lag estimator attacks instantly and decays slowly: a spike is the
// failure being prevented, so it must raise the estimate at once, while
// recovery back toward a quiet machine's lag takes many observations.
func TestNoteLagAttackDecay(t *testing.T) {
	c := NewWallClock(100)
	defer c.Stop()
	s := c.Shard(0)

	s.noteLag(5 * time.Millisecond)
	if got := s.WakeupLag(); got != 5*time.Millisecond {
		t.Fatalf("after 5ms spike: WakeupLag = %v, want instant attack to 5ms", got)
	}
	// A bigger spike overrides immediately.
	s.noteLag(8 * time.Millisecond)
	if got := s.WakeupLag(); got != 8*time.Millisecond {
		t.Fatalf("after 8ms spike: WakeupLag = %v, want 8ms", got)
	}
	// One small observation barely moves it (1/64 of the distance)...
	s.noteLag(0)
	want := 8 * time.Millisecond
	want -= want >> 6
	if got := s.WakeupLag(); got != want {
		t.Fatalf("after one quiet observation: WakeupLag = %v, want %v", got, want)
	}
	// ...but a few hundred drain it to (near) zero.
	for i := 0; i < 1500; i++ {
		s.noteLag(0)
	}
	if got := s.WakeupLag(); got > 100*time.Microsecond {
		t.Fatalf("after 1500 quiet observations: WakeupLag = %v, want near zero", got)
	}
	// Negative lag (fired early) is floored at zero, not credited.
	s.noteLag(time.Millisecond)
	s.noteLag(-time.Second)
	if got := s.WakeupLag(); got < 0 || got > time.Millisecond {
		t.Fatalf("after early fire: WakeupLag = %v, want within [0, 1ms]", got)
	}
}

// Compensation is twice the lag estimate clamped to the configured
// bound, and exactly zero while disarmed regardless of observed lag.
func TestCompensationGuardBandAndClamp(t *testing.T) {
	c := NewWallClock(100)
	defer c.Stop()
	s := c.Shard(0)
	s.noteLag(2 * time.Millisecond)

	if got := s.Compensation(); got != 0 {
		t.Fatalf("disarmed: Compensation = %v, want 0", got)
	}
	c.SetJitterComp(10 * time.Millisecond)
	if got := s.Compensation(); got != 4*time.Millisecond {
		t.Fatalf("armed, 2ms lag: Compensation = %v, want the 2x guard band (4ms)", got)
	}
	c.SetJitterComp(3 * time.Millisecond)
	if got := s.Compensation(); got != 3*time.Millisecond {
		t.Fatalf("armed, 3ms clamp: Compensation = %v, want the clamp", got)
	}
	c.SetJitterComp(0)
	if got := s.Compensation(); got != 0 {
		t.Fatalf("disarmed again: Compensation = %v, want 0", got)
	}
}

// tickCompensated floors to the wheel tick below the backed-off instant
// — the residual quantization error is early, where tickAt's is late —
// and never aims into negative time.
func TestTickCompensatedFloor(t *testing.T) {
	c := NewWallClockTick(1, 10*time.Millisecond) // 1 tick = 10ms = 0.01 engine-s
	defer c.Stop()

	// 95ms uncompensated: tickAt rounds up to tick 10, tickCompensated
	// with zero comp floors to tick 9.
	at := si.Seconds(0.095)
	if got := c.tickAt(at); got != 10 {
		t.Fatalf("tickAt(95ms) = %d, want 10 (ceil)", got)
	}
	if got := c.tickCompensated(at, 0); got != 9 {
		t.Fatalf("tickCompensated(95ms, 0) = %d, want 9 (floor)", got)
	}
	// Backing off 20ms lands two ticks earlier: floor(75ms/10ms) = 7.
	if got := c.tickCompensated(at, 20*time.Millisecond); got != 7 {
		t.Fatalf("tickCompensated(95ms, 20ms) = %d, want 7", got)
	}
	// A compensation larger than the instant clamps to tick 0.
	if got := c.tickCompensated(at, time.Second); got != 0 {
		t.Fatalf("tickCompensated(95ms, 1s) = %d, want 0", got)
	}
	if got := c.tickCompensated(-1, 0); got != 0 {
		t.Fatalf("tickCompensated(-1s, 0) = %d, want 0", got)
	}
}

// An armed clock still fires every timer — compensation shifts aim
// points, it must never lose or deadlock a timer — and same-tick FIFO
// order survives the shifted aims.
func TestWallShardFiresWithCompensationArmed(t *testing.T) {
	c := NewWallClockTick(1000, 100*time.Microsecond)
	defer c.Stop()
	c.SetJitterComp(5 * time.Millisecond)
	s := c.Shard(0)
	// Seed a lag estimate so the aim actually backs off.
	s.noteLag(2 * time.Millisecond)

	const n = 64
	var mu sync.Mutex
	var fired []int
	done := make(chan struct{})
	for i := 0; i < n; i++ {
		i := i
		// Spread over ~20ms wall (1000x scale): some aims fall in the
		// past (clamped to next tick), some in the future.
		s.Schedule(si.Seconds(float64(i)*0.3), func() {
			mu.Lock()
			fired = append(fired, i)
			if len(fired) == n {
				close(done)
			}
			mu.Unlock()
		})
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		mu.Lock()
		t.Fatalf("timers lost with compensation armed: %d of %d fired", len(fired), n)
	}
	mu.Lock()
	defer mu.Unlock()
	for i := 1; i < n; i++ {
		if fired[i] < fired[i-1] {
			t.Fatalf("timers fired out of order at %d: %v", i, fired[:i+1])
		}
	}
	if got := s.PendingTimers(); got != 0 {
		t.Fatalf("PendingTimers = %d after all fired, want 0", got)
	}
}
