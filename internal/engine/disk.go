package engine

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/buffer"
	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/diskmodel"
	"repro/internal/si"
	"repro/internal/workload"
)

// Stream is one admitted request being serviced by a disk.
type Stream struct {
	disk        *Disk // owning disk, for pre-bound clock callbacks
	id          int
	req         workload.Request
	place       catalog.Placement
	rate        si.BitRate // consumption rate (== cfg.CR in uniform mode)
	want        si.BitRate // rung the viewer requested — adaptation's up-switch ceiling
	booked      si.BitRate // rate held in the committed-bandwidth book (never shrinks mid-stream)
	ctx         *rateCtx   // per-rate sizing context; nil in uniform mode
	nAtArrival  int        // requests in service at its arrival (Fig. 11's x-axis)
	required    si.Bits    // total data the user will consume: rate · viewing
	delivered   si.Bits    // data read from disk so far
	size        si.Bits    // most recent allocated buffer size
	lastFill    si.Bits    // amount of the in-flight or most recent fill
	deadline    si.Seconds // cached pool EmptyAt, refreshed at each fill
	lastFillAt  si.Seconds // completion time of the most recent fill
	firstFill   si.Seconds
	rateSince   si.Seconds // when the current rate epoch began (start or last switch)
	headroomRun int        // consecutive services with up-switch headroom (adaptation)
	admittedAt  si.Seconds // when the stream entered service
	slot        int        // index in Disk.streams (admission order)
	admitSeq    int64      // monotone admission sequence, ties in the deadline index
	dlKey       si.Seconds // deadline value the deadline index holds
	dlPos       int        // position in the deadline index, -1 outside
	inDl        bool       // member of the deadline index
	departT     Timer      // pending departure, rescheduled on Extend
	started     bool       // first fill has landed
	active      bool       // still owned by the disk
	doomed      bool       // departed mid-service; remove at completion
	starved     bool       // suffered at least one underrun (QoE accounting)
	group       int        // GSS group index
}

// ID returns the stream's request ID.
func (st *Stream) ID() int { return st.id }

// Req returns the request the stream serves.
func (st *Stream) Req() workload.Request { return st.req }

// NAtArrival reports how many requests were in service on the stream's
// disk when it arrived (Fig. 11's x-axis).
func (st *Stream) NAtArrival() int { return st.nAtArrival }

// Required is the total data the viewer will consume: rate · viewing time.
func (st *Stream) Required() si.Bits { return st.required }

// Rate is the stream's consumption rate — the delivered ladder rung,
// which downgrading admission may have stepped below the requested one.
func (st *Stream) Rate() si.BitRate { return st.rate }

// Want is the rung the viewer originally requested — the ceiling
// mid-stream adaptation may step the stream back up to after downgrading
// admission or a down-switch parked it lower. Equal to Rate() while no
// downgrade or switch has happened.
func (st *Stream) Want() si.BitRate { return st.want }

// RateSince reports when the stream's current rate epoch began: its
// first fill, or its most recent mid-stream switch. Inside an
// OnRateSwitch callback it still reports the epoch that is ending, so
// observers can accrue time-weighted delivered-rung accounting without
// keeping per-stream state of their own.
func (st *Stream) RateSince() si.Seconds { return st.rateSince }

// Starved reports whether the stream suffered at least one underrun —
// the per-stream signal behind the QoE layer's starvation probability
// (arXiv:1108.0187).
func (st *Stream) Starved() bool { return st.starved }

// Delivered is the data read from disk so far (including the in-flight
// fill once it has been issued).
func (st *Stream) Delivered() si.Bits { return st.delivered }

// Size is the stream's most recently allocated buffer size.
func (st *Stream) Size() si.Bits { return st.size }

// Started reports whether the stream's first fill has landed.
func (st *Stream) Started() bool { return st.started }

// AdmittedAt reports when the stream entered service — the instant its
// admission-to-first-byte latency starts, which live instrumentation
// (internal/livemetrics) measures against OnStart.
func (st *Stream) AdmittedAt() si.Seconds { return st.admittedAt }

// needService reports whether the stream still has data to fetch.
func (st *Stream) needService() bool {
	return st.active && st.delivered < st.required
}

// Pre-bound clock callbacks: package-level functions carry no per-call
// closure, so a steady-state stream schedules its recurring events
// (dispatch wake-ups, fill completions, departures) with zero heap
// allocations — the event payload slot carries the receiver.
func dispatchCB(arg any) { arg.(*Disk).dispatch() }
func departCB(arg any)   { st := arg.(*Stream); st.disk.depart(st) }
func completeCB(arg any) { st := arg.(*Stream); st.disk.completeService(st) }

// queued is an accepted request waiting for admission (deferral under the
// dynamic scheme's enforcement, or simply for the next service slot).
type queued struct {
	req        workload.Request
	rate       si.BitRate // resolved consumption rate (ladder rung or CR)
	want       si.BitRate // rung requested before any downgrade (adaptation ceiling)
	nAtArrival int
}

// estEntry is a pending prediction check: at start a buffer was allocated
// with kc estimated additional requests over its usage period; once the
// period closes, the estimate is compared with actual arrivals.
type estEntry struct {
	start, end si.Seconds
	kc         int
}

// Disk runs one disk's streaming service: its scheduler, allocator
// bookkeeping, admission control, and buffer pool.
type Disk struct {
	sys   *System
	id    int
	clock Clock
	disk  *diskmodel.Disk
	pool  *buffer.Pool

	// streams holds the in-service streams in admission order. The order
	// is load-bearing: scheduler tie-breaks (equal deadlines, equal
	// arrivals) resolve by admission order, so removal must shift, not
	// swap-delete — each stream's slot field makes the position lookup
	// O(1) and the shift a single memmove.
	streams []*Stream

	// queue is the admission-deferral FIFO, popped by head index instead
	// of re-slicing so steady-state admission touches O(1) entries.
	queue []queued
	qhead int

	book *core.Book
	est  *core.Estimator

	// Committed (in-service + queued) and in-service consumption
	// bandwidth — the multi-rate admission and bandwidth-equivalent
	// sizing signals, maintained in uniform mode too (where they are
	// simply committed()·CR and n()·CR).
	committedRate si.BitRate
	serviceRate   si.BitRate

	// rateLive counts in-service streams per rate context (indexed by
	// rateCtx.idx); nil in uniform mode. Worst-case planning bounds over
	// the contexts with live streams only.
	rateLive []int

	// admits counts streams that entered service over the disk's
	// lifetime. Under churn-safe admission, budget mirrors book but
	// stamps each allocation with the admission count at fill time, so
	// min_i(stamp_i + k_i) bounds further admissions (core.AdmitBudget).
	admits int
	budget *core.Book // nil unless Config.ChurnSafeAdmission

	// lastDistress and lastUp pace the rate map's recovery side (see
	// adaptUp): lastDistress is the most recent time this disk produced
	// an underrun or a distress down-switch, lastUp the most recent
	// up-switch. Together they turn recovery into a gradual ramp — one
	// step per usage period, paused after any distress — instead of a
	// thundering herd.
	lastDistress si.Seconds
	lastUp       si.Seconds

	sched Scheduler

	busy    bool
	current *Stream
	wake    Timer

	admitSeq int64 // next stream's admission sequence number

	// deadlines indexes started streams that still need service by
	// (deadline, admitSeq). It replaces both the per-dispatch min-deadline
	// scan and the per-period sort.Float64s of the lazy-start computation:
	// a deadline changes only at fill completion, so the index absorbs an
	// O(log n) heap fixup there instead of an O(n log n) sort at every
	// scheduling decision (and instead of the O(n) memmove the previous
	// sorted-slice index paid — material at modern-disk stream counts).
	deadlines deadlineIndex

	// fresh is a FIFO of admitted streams awaiting their first fill.
	// Admission order is arrival order, so the head is the scan winner
	// (earliest arrival, earliest admission on ties); entries that
	// started or departed are skipped lazily — neither state reverts.
	fresh     []*Stream
	freshHead int

	// k_log caching: the two-pointer window scan is recomputed only when
	// new arrivals landed or the cache is older than klogRefresh.
	kcDirty   bool
	klogCache int
	klogAt    si.Seconds

	lastPeriod si.Seconds // usage period of the last allocated buffer

	// estArrivals holds accepted arrivals for estimation-success
	// accounting — a request rejected outright at capacity is never
	// serviced, so it is not an "additional request" the prediction needs
	// to cover. (The raw stream every arrival joins lives in est, which
	// prunes itself to the T_log window.) Entries at or below the oldest
	// pending window's start are pruned in resolveEstimates, so the log
	// stays bounded over arbitrarily long runs. Both logs are ring
	// buffers: one estimate is recorded per fill, and slice append/trim
	// churn here used to account for nearly all of a simulated day's
	// allocated bytes.
	estArrivals fifo[si.Seconds]
	pending     fifo[estEntry]

	// scratch buffers reused across dispatches.
	deadlineScratch []si.Seconds
	dlMerge         []si.Seconds
	cylSort         cylSorter
}

// klogRefresh bounds how stale the cached k_log may get between arrivals:
// the window only slides, so k_log can only decrease while no arrivals
// come, and a short staleness is harmless.
const klogRefresh = si.Seconds(10)

func newDisk(sys *System, id int) *Disk {
	d := &Disk{
		sys:       sys,
		id:        id,
		clock:     sys.domain.DiskClock(id),
		disk:      diskmodel.NewDisk(sys.cfg.Spec, sys.cfg.Seed*1000003+int64(id)),
		pool:      buffer.NewPagedPool(0, sys.cfg.PageSize),
		book:      core.NewBook(),
		est:       core.NewEstimator(sys.cfg.TLog),
		deadlines: newDeadlineIndex(),
	}
	if sys.cfg.ChurnSafeAdmission {
		d.budget = core.NewBook()
	}
	if len(sys.ctxs) > 0 {
		d.rateLive = make([]int, len(sys.ctxs))
	}
	if sys.cfg.UnderrunTolerance > 0 {
		d.pool.SetUnderrunTolerance(sys.cfg.UnderrunTolerance)
	}
	// A sane initial period guess: the usage period of the smallest
	// dynamic buffer. Updated at every allocation.
	d.lastPeriod = sys.params.UsagePeriod(sys.sizeFor(d, 1, sys.params.Alpha))
	if sys.cfg.NewScheduler != nil {
		d.sched = sys.cfg.NewScheduler(d)
	} else {
		d.sched = NewScheduler(d)
	}
	d.pool.SetUnderrunFunc(func(id int, now, gap si.Seconds) {
		d.markStarved(id)
		d.lastDistress = now
		sys.obs.OnUnderrun(d.id, id, now, gap)
	})
	return d
}

// markStarved flags the starved stream for QoE accounting. Underruns are
// the rare failure the sizing theorems exist to prevent, so a linear
// scan costs nothing in steady state.
func (d *Disk) markStarved(id int) {
	for _, st := range d.streams {
		if st.id == id {
			st.starved = true
			return
		}
	}
}

func (d *Disk) now() si.Seconds { return d.clock.Now() }

// ID reports the disk's index in the system.
func (d *Disk) ID() int { return d.id }

// n reports the number of requests in service on this disk.
func (d *Disk) n() int { return len(d.streams) }

// InService reports the number of requests in service on this disk.
func (d *Disk) InService() int { return len(d.streams) }

// QueueLen reports accepted requests still waiting for admission.
func (d *Disk) QueueLen() int { return len(d.queue) - d.qhead }

// committed reports requests in service plus accepted-but-deferred ones,
// the count capacity rejection uses.
func (d *Disk) committed() int { return len(d.streams) + d.QueueLen() }

// Committed reports requests in service plus accepted-but-deferred ones.
func (d *Disk) Committed() int { return d.committed() }

// CommittedRate reports the committed consumption bandwidth: the sum of
// the rates of in-service plus accepted-but-deferred requests.
func (d *Disk) CommittedRate() si.BitRate { return d.committedRate }

// BookLen reports the number of inertia-book entries (dynamic scheme).
func (d *Disk) BookLen() int { return d.book.Len() }

// Pool returns the disk's buffer pool.
func (d *Disk) Pool() *buffer.Pool { return d.pool }

// DiskStats returns the disk model's operation counters.
func (d *Disk) DiskStats() diskmodel.ReadStats { return d.disk.Stats() }

// Streams returns the streams in service, in admission order. The slice
// is the disk's own — callers must not mutate it.
func (d *Disk) Streams() []*Stream { return d.streams }

// onArrival handles a request arriving at this disk: record it for the
// estimator, reject it when the disk or the admission gate is full, else
// accept it into the deferral queue and try to dispatch.
func (d *Disk) onArrival(req workload.Request) {
	now := d.now()
	d.est.RecordArrival(now)
	d.kcDirty = true
	d.resolveEstimates(now)

	rate := req.Rate
	if rate <= 0 {
		rate = d.sys.cfg.CR
	}
	want := rate
	if d.sys.multi == nil {
		if d.committed() >= d.sys.admitCap {
			d.sys.obs.OnReject(d.id, req, RejectCapacity, now)
			return
		}
	} else if !d.fitsRate(rate) {
		// Predicted shortfall at the requested rung: walk the title's
		// ladder downward (arXiv:1604.00894's downgrading allocation)
		// before giving up.
		rate = d.downgrade(req, rate, now)
		if rate <= 0 {
			d.sys.obs.OnReject(d.id, req, RejectCapacity, now)
			return
		}
		req.Rate = rate
	}
	if g := d.sys.gate; g != nil && !g.TryAdmit(d) {
		d.sys.obs.OnReject(d.id, req, RejectMemory, now)
		return
	}
	d.estArrivals.push(now)
	d.queue = append(d.queue, queued{req: req, rate: rate, want: want, nAtArrival: d.n()})
	d.committedRate += rate
	d.dispatch()
}

// fitsRate reports whether one more committed stream at rate r keeps the
// disk inside both its count capacity and its committed-bandwidth
// capacity — the multi-rate generalization of N·CR < TR.
func (d *Disk) fitsRate(r si.BitRate) bool {
	if d.committed() >= d.sys.admitCap {
		return false
	}
	return d.committedRate+r < d.sys.bwCap
}

// snapCommittedRate zeroes the bandwidth books when their populations
// empty: summing += r / -= r over mixed float rates leaves ulp-sized
// residue that would otherwise accumulate over a long run and bias
// fitsRate at the margin.
func (d *Disk) snapCommittedRate() {
	if d.committed() == 0 {
		d.committedRate = 0
	}
	if len(d.streams) == 0 {
		d.serviceRate = 0
	}
}

// downgrade walks req's title ladder below the requested rung and
// returns the first rate the disk can take, or 0 when downgrading is off
// or no rung fits. Only rungs the system has sizing contexts for are
// considered.
func (d *Disk) downgrade(req workload.Request, from si.BitRate, now si.Seconds) si.BitRate {
	if !d.sys.cfg.Downgrade {
		return 0
	}
	for _, rung := range d.sys.cfg.Library.Video(req.Video).Rungs() {
		if rung >= from || d.sys.ctxFor(rung) == nil {
			continue
		}
		if d.fitsRate(rung) {
			d.sys.obs.OnDowngrade(d.id, req, from, rung, now)
			return rung
		}
	}
	return 0
}

// Cancel withdraws a request by ID, whether it is still queued for
// admission or already in service. The live driver uses it for viewers
// that hang up or time out; the simulator never cancels, so simulation
// schedules are unaffected. It reports whether a still-queued entry was
// withdrawn — that path fires no observer callback, so accounting
// layered on OnDepart (e.g. a fleet router's load tracking) must release
// on true; the in-service path departs through OnDepart as usual.
func (d *Disk) Cancel(id int) bool {
	for i := d.qhead; i < len(d.queue); i++ {
		if d.queue[i].req.ID == id {
			d.committedRate -= d.queue[i].rate
			d.queue = append(d.queue[:i], d.queue[i+1:]...)
			if d.qhead == len(d.queue) {
				d.queue, d.qhead = d.queue[:0], 0
			}
			d.snapCommittedRate()
			if g := d.sys.gate; g != nil {
				g.Release(d)
			}
			return true
		}
	}
	for _, st := range d.streams {
		if st.id == id {
			d.depart(st)
			return false
		}
	}
	return false
}

// Extend raises a committed request's viewing time to at least viewing,
// whether the request is still queued for admission or already in
// service. The sharing layer uses it when a late viewer piggybacks onto
// a stream whose remaining horizon is shorter than the newcomer needs:
// the stream's required data grows by the same CR·viewing rule admission
// used, its departure moves to firstFill+viewing, and — if it had
// finished fetching — it re-enters the service rotation (every scheduler
// re-checks needService dynamically). Extending never shrinks a viewing
// time. It reports whether the request was found; false means the
// request already departed or was never accepted.
func (d *Disk) Extend(id int, viewing si.Seconds) bool {
	for i := d.qhead; i < len(d.queue); i++ {
		if d.queue[i].req.ID == id {
			if viewing > d.queue[i].req.Viewing {
				d.queue[i].req.Viewing = viewing
			}
			return true
		}
	}
	for _, st := range d.streams {
		if st.id == id {
			d.extendStream(st, viewing)
			return true
		}
	}
	return false
}

func (d *Disk) extendStream(st *Stream, viewing si.Seconds) {
	if viewing <= st.req.Viewing {
		return
	}
	st.req.Viewing = viewing
	st.required = maxBits(st.rate.DataIn(viewing), 1)
	// A depart that fired mid-service no longer stands: the stream now
	// outlives the service in flight.
	st.doomed = false
	if !st.started {
		return // the first fill schedules the departure from the new viewing
	}
	st.departT.Cancel()
	st.departT = d.clock.ScheduleFunc(st.firstFill+viewing, departCB, st)
	d.dlFix(st)
	d.dispatch()
}

// admitFromQueue moves accepted requests into service while the scheme's
// admission control allows it.
func (d *Disk) admitFromQueue() {
	for d.qhead < len(d.queue) {
		n := d.n()
		if n >= d.sys.admitCap {
			return
		}
		if !d.sys.cfg.Allocator.Admit(d, n) {
			d.sys.obs.OnDefer(d.id, d.now())
			return
		}
		q := d.queue[d.qhead]
		d.qhead++
		if d.qhead == len(d.queue) {
			d.queue, d.qhead = d.queue[:0], 0
		}
		d.admitSeq++
		d.admits++
		// Serve from this disk's own copy when the library replicates or
		// stripes the title across disks; requests routed to a disk
		// without one fall back to the primary placement's geometry, the
		// historical behavior.
		place, ok := d.sys.cfg.Library.PlacementFor(q.req.Video, d.id)
		if !ok {
			place = d.sys.cfg.Library.Placement(q.req.Video)
		}
		st := &Stream{
			disk:       d,
			id:         q.req.ID,
			req:        q.req,
			place:      place,
			rate:       q.rate,
			want:       q.want,
			booked:     q.rate,
			ctx:        d.sys.ctxFor(q.rate),
			nAtArrival: q.nAtArrival,
			required:   maxBits(q.rate.DataIn(q.req.Viewing), 1),
			deadline:   d.now(), // fresh: due immediately
			firstFill:  -1,
			admittedAt: d.now(),
			dlPos:      -1,
			slot:       len(d.streams),
			admitSeq:   d.admitSeq,
			active:     true,
		}
		d.streams = append(d.streams, st)
		d.fresh = append(d.fresh, st)
		d.serviceRate += q.rate
		if st.ctx != nil {
			d.rateLive[st.ctx.idx]++
		}
		d.pool.Attach(st.id, q.rate, d.now())
		d.sched.Admit(st)
		d.sys.obs.OnAdmit(d.id, st, d.now())
	}
}

// removeStream detaches a departed stream from every structure and frees
// its capacity.
func (d *Disk) removeStream(st *Stream) {
	if !st.active {
		return
	}
	st.active = false
	st.departT.Cancel()
	st.departT = Timer{}
	d.serviceRate -= st.rate
	d.committedRate -= st.booked
	if st.ctx != nil {
		d.rateLive[st.ctx.idx]--
	}
	d.dlRemove(st)
	d.pool.Detach(st.id, d.now())
	d.book.Remove(st.id)
	if d.budget != nil {
		d.budget.Remove(st.id)
	}
	i, last := st.slot, len(d.streams)-1
	copy(d.streams[i:], d.streams[i+1:])
	d.streams[last] = nil
	d.streams = d.streams[:last]
	for j := i; j < last; j++ {
		d.streams[j].slot = j
	}
	d.sched.Remove(st)
	d.snapCommittedRate()
	d.sys.obs.OnDepart(d.id, st, d.now())
	if g := d.sys.gate; g != nil {
		g.Release(d)
	}
	d.dispatch()
}

// dlInsert adds st to the deadline index if it qualifies (started and
// still fetching), keyed by its current (deadline, admitSeq).
func (d *Disk) dlInsert(st *Stream) {
	if st.inDl || !st.started || !st.needService() {
		return
	}
	st.dlKey = st.deadline
	st.inDl = true
	d.deadlines.insert(st)
}

// dlRemove drops st from the deadline index if present.
func (d *Disk) dlRemove(st *Stream) {
	if !st.inDl {
		return
	}
	d.deadlines.remove(st)
	st.inDl = false
}

// dlFix re-indexes st after its deadline or service need changed.
func (d *Disk) dlFix(st *Stream) {
	d.dlRemove(st)
	d.dlInsert(st)
}

// minDeadlineStream returns the started stream with the earliest
// deadline still needing service (admission order breaks ties), or nil.
func (d *Disk) minDeadlineStream() *Stream {
	return d.deadlines.min()
}

// firstFresh returns the earliest-admitted stream awaiting its first
// fill, or nil. Disqualified entries (started, finished, departed) are
// discarded lazily from the head; neither condition ever reverts, so a
// skipped entry can never qualify again.
func (d *Disk) firstFresh() *Stream {
	for d.freshHead < len(d.fresh) {
		st := d.fresh[d.freshHead]
		if !st.started && st.needService() {
			return st
		}
		d.fresh[d.freshHead] = nil
		d.freshHead++
	}
	if len(d.fresh) > 0 {
		d.fresh, d.freshHead = d.fresh[:0], 0
	}
	return nil
}

// dispatch is the disk's main decision point: admit what the scheduler's
// timing allows, pick the next service, and either start it, sleep until
// its lazy start time, or go idle.
func (d *Disk) dispatch() {
	if d.busy {
		return
	}
	d.wake.Cancel()
	d.wake = Timer{}
	if d.sched.CanAdmit() {
		d.admitFromQueue()
	}
	st, startAt := d.sched.Next(d.now())
	if st == nil {
		return // idle: the next arrival or departure re-dispatches
	}
	if startAt > d.now() {
		d.wake = d.clock.ScheduleFunc(startAt, dispatchCB, d)
		return
	}
	d.beginService(st)
}

// beginService allocates the buffer for st per the configured scheme and
// starts the disk read.
func (d *Disk) beginService(st *Stream) {
	now := d.now()
	n := d.n()
	if d.sys.adapt != nil && st.started {
		// The rate map's distress side runs before the allocator: a
		// down-switch here re-sizes this very fill against the lower
		// rung's context. A deep down-switch may leave nothing to fetch
		// (the buffered level already covers the re-planned demand); the
		// fill<=0 path below retires the service as usual.
		d.adaptDown(st, now, n)
	}
	size := d.sys.cfg.Allocator.Size(d, st, n)
	st.size = size
	fill := size
	if rem := st.required - st.delivered; fill > rem {
		fill = rem
	}
	// Use-it-and-toss-it: the buffer never holds more than one allocation;
	// a refill only replenishes what the stream has consumed. A member
	// swept early may need nothing at all — skip the disk entirely.
	if room := size - d.pool.Level(st.id, now); fill > room {
		fill = room
	}
	if fill <= 0 {
		d.sched.OnServiced(st)
		d.dispatch()
		return
	}
	cyl := d.sys.cfg.Spec.CylinderOf(st.place.DiskOffset(st.delivered, fill))
	if !d.pool.BeginFill(st.id, fill, now) {
		// Only possible with a hard pool budget (not used by System runs,
		// which admit by formula); retry shortly and count the stall.
		d.sys.obs.OnStall(d.id, now)
		d.wake = d.clock.AfterFunc(d.sys.cfg.Spec.MaxRotational, dispatchCB, d)
		return
	}
	st.delivered += fill
	if !st.needService() {
		// The in-flight fill is the stream's last: it no longer anchors
		// refill deadlines.
		d.dlRemove(st)
	}
	st.lastFill = fill
	dur := d.disk.Read(cyl, fill)
	d.busy = true
	d.current = st
	d.sys.obs.OnFill(d.id, st, now, dur, fill, d.pool.EmptyAt(st.id))
	d.clock.AfterFunc(dur, completeCB, st)
}

// completeService lands the fill, records first-fill latency, schedules
// the departure, and moves on.
func (d *Disk) completeService(st *Stream) {
	now := d.now()
	d.pool.CompleteFill(st.id, now)
	st.deadline = d.pool.EmptyAt(st.id)
	st.lastFillAt = now
	d.busy = false
	d.current = nil
	d.sys.obs.OnFillComplete(d.id, st, st.lastFill, now)
	if !st.started {
		st.started = true
		st.firstFill = now
		st.rateSince = now
		d.sys.obs.OnStart(d.id, st, now)
		st.departT = d.clock.ScheduleFunc(now+st.req.Viewing, departCB, st)
	}
	d.dlFix(st)
	d.sched.OnServiced(st)
	if st.doomed {
		st.doomed = false
		d.removeStream(st)
		return // removeStream dispatched already
	}
	if d.sys.adapt != nil {
		// The rate map's recovery side runs on the full buffer the fill
		// just topped up — the safest moment to trade slack for rate.
		d.adaptUp(st, now)
	}
	d.dispatch()
}

// depart handles the end of a request's viewing time.
func (d *Disk) depart(st *Stream) {
	if !st.active {
		return
	}
	if d.current == st {
		st.doomed = true // finish the in-flight service first
		return
	}
	d.removeStream(st)
}

// recordEstimate logs a (kc, usage period) pair for later success checking
// and refreshes the rolling period estimate.
func (d *Disk) recordEstimate(size si.Bits, kc int) {
	now := d.now()
	t := d.sys.params.UsagePeriod(size)
	d.lastPeriod = t
	d.pending.push(estEntry{start: now, end: now + t, kc: kc})
	d.sys.obs.OnEstimate(d.id, kc, size, now)
}

// Estimate computes kc per Fig. 5 Step 4, exactly as the paper states it:
// min(k_log + alpha, min_i(k_i) + alpha), with the k_log window scan
// cached between arrivals. kc is not clamped to the spare capacity — the
// sizing table saturates at full load for any k >= N−n (the recurrence
// chain clamps at N), and clamping the prediction itself would starve the
// inertia book of realistic snapshots under heavy load.
func (d *Disk) Estimate(n int) int {
	now := d.now()
	if d.kcDirty || now-d.klogAt > klogRefresh {
		d.klogCache = d.est.KLog(now, d.lastPeriod)
		d.klogAt = now
		d.kcDirty = false
	}
	p := d.sys.params
	kc := d.klogCache + p.Alpha
	if minK := d.book.MinK(); minK <= 2*p.N {
		if ceil := minK + p.Alpha; ceil < kc {
			kc = ceil
		}
	}
	if kc < 0 {
		kc = 0
	}
	return kc
}

// ResolveEstimates settles prediction checks whose window has closed:
// an estimate succeeds when kc is at least the number of actual arrivals
// within the usage period (Section 5.1's "successful estimation").
func (d *Disk) ResolveEstimates(now si.Seconds) { d.resolveEstimates(now) }

func (d *Disk) resolveEstimates(now si.Seconds) {
	for d.pending.len() > 0 {
		e := *d.pending.front()
		if e.end > now {
			break
		}
		actual := d.countArrivals(e.start, e.end)
		d.sys.obs.OnEstimateResolved(d.id, e.kc >= actual, now)
		d.pending.popFront()
	}
	// Prune accepted arrivals no outstanding window can query: pending
	// entries are in start order, countArrivals treats its lower bound
	// exclusively, and every future window starts at or after now.
	lo := now
	if d.pending.len() > 0 {
		lo = d.pending.front().start
	}
	if cut := sort.Search(d.estArrivals.len(), func(i int) bool { return *d.estArrivals.at(i) > lo }); cut > 0 {
		d.estArrivals.popN(cut)
	}
}

// countArrivals counts accepted arrivals in (lo, hi] by binary search
// over the in-order log.
func (d *Disk) countArrivals(lo, hi si.Seconds) int {
	a := &d.estArrivals
	i := sort.Search(a.len(), func(i int) bool { return *a.at(i) > lo })
	j := sort.Search(a.len(), func(i int) bool { return *a.at(i) > hi })
	return j - i
}

// effLoad maps the disk's in-service load to an equivalent stream count
// at ctx's rate: the load whose sizing row covers the same round of disk
// work. Two dimensions bound the round — its transfer work scales with
// the consumption bandwidth (ceil(serviceRate/rate) rate-c streams move
// the same bits), but its seek-and-rotation work scales with the stream
// COUNT, which a bandwidth quotient undercounts whenever the mix skews
// below c. The equivalent load is therefore the larger of the two,
// clamped into the ctx table's [1, N]; for a uniform mix they coincide
// and the quotient alone is exact. Undersizing the high rungs in a
// low-skewed mix is not hypothetical: the buffers the inertia book
// snapshots would cover fewer services than the round actually contains,
// admission quietly over-commits, and the schedule erodes into underruns
// — the regime mid-stream down-switching (AdaptConfig) steers into.
func (d *Disk) effLoad(c *rateCtx) int {
	n := int(math.Ceil(float64(d.serviceRate) / float64(c.rate)))
	if live := len(d.streams); n < live {
		n = live
	}
	if n < 1 {
		n = 1
	}
	if n > c.params.N {
		n = c.params.N
	}
	return n
}

// sizeForStream evaluates the dynamic sizing table for st at prediction
// k: the system table at load n in uniform mode, st's own rate context
// at the disk's bandwidth-equivalent load otherwise.
func (d *Disk) sizeForStream(st *Stream, n, k int) si.Bits {
	if st.ctx == nil {
		return d.sys.sizeFor(d, n, k)
	}
	return st.ctx.table.Size(d.effLoad(st.ctx), k)
}

// planOverLive bounds a per-rate plan quantity over the rate contexts
// with streams currently in service, each evaluated at the disk's
// bandwidth-equivalent load; an idle disk plans with the base rate. Only
// meaningful in multi-rate mode. Bounding over live rates — not every
// configured one — matters: a slow rung evaluated near its own capacity
// knee would inflate every worst-case service estimate and wreck the
// schedule for the streams that actually exist.
func (d *Disk) planOverLive(size func(c *rateCtx) si.Bits) si.Bits {
	var max si.Bits
	for i, c := range d.sys.ctxs {
		if d.rateLive[i] == 0 {
			continue
		}
		if s := size(c); s > max {
			max = s
		}
	}
	if max == 0 {
		max = size(d.sys.ctxs[0])
	}
	return max
}

// worstService bounds the duration of one service at load n: the method's
// worst disk latency plus the transfer of the size the allocator would
// plan for right now.
func (d *Disk) worstService(n int) si.Seconds {
	if n < 1 {
		n = 1
	}
	size := d.sys.cfg.Allocator.PlanSize(d, n)
	return d.sys.cfg.Method.WorstDL(d.sys.cfg.Spec, n) + d.sys.cfg.Spec.TransferRate.TimeToTransfer(size)
}

// deadlineOf reports when a stream's buffer runs dry (fresh streams are
// due immediately). It reads the cached value refreshed at each fill,
// saving a pool lookup on every scheduling decision.
func (d *Disk) deadlineOf(st *Stream) si.Seconds { return st.deadline }

// roomAt reports the earliest time a refill of st is worthwhile: when the
// buffer has drained to a quarter of its last allocation. Scheduling
// cushions must never outpace consumption — for tiny dynamic buffers the
// cushion can exceed a whole usage period, and without this floor the
// scheduler would spin refilling already-full buffers.
func (d *Disk) roomAt(st *Stream) si.Seconds {
	if st.size <= 0 {
		return 0 // fresh stream: fillable immediately
	}
	return d.deadlineOf(st) - si.Seconds(0.75*float64(d.sys.params.UsagePeriod(st.size)))
}

// lazyMarginServices is the safety cushion applied to lazy starts,
// measured in worst-case service times. Perfectly just-in-time refilling
// leaves no room to absorb a newly admitted stream's immediate first fill
// (the real Fixed-Stretch/BubbleUp schedule keeps that room as free
// slots); refilling two services early restores it at a memory cost of
// 2·w·CR per stream, a couple of percent of a buffer.
const lazyMarginServices = 2

// latestStartSorted computes the safe lazy start for servicing a batch of
// streams sequentially when the service order may be adversarial with
// respect to deadlines: every deadline d_(i) (ascending — the input MUST
// already be sorted, which deadlineIndex.appendAscending provides) must
// allow i services of duration w first, so start <= min_i(d_(i) − i·w),
// minus the safety cushion.
func latestStartSorted(deadlines []si.Seconds, w si.Seconds) si.Seconds {
	best := deadlines[0] - w
	for i, dl := range deadlines {
		if cand := dl - si.Seconds(i+1)*w; cand < best {
			best = cand
		}
	}
	return best - lazyMarginServices*w
}

func maxBits(a, b si.Bits) si.Bits {
	if a > b {
		return a
	}
	return b
}

// sanity check helper used in tests.
func (d *Disk) invariants() error {
	if len(d.streams) > d.sys.admitCap {
		return fmt.Errorf("engine: disk %d exceeds its admit capacity %d with %d streams", d.id, d.sys.admitCap, len(d.streams))
	}
	for i, st := range d.streams {
		if st.slot != i {
			return fmt.Errorf("engine: disk %d stream %d slot %d at index %d", d.id, st.id, st.slot, i)
		}
	}
	if err := d.deadlines.check(); err != nil {
		return fmt.Errorf("engine: disk %d deadline index: %w", d.id, err)
	}
	return nil
}
