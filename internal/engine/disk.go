package engine

import (
	"fmt"
	"sort"

	"repro/internal/buffer"
	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/diskmodel"
	"repro/internal/si"
	"repro/internal/workload"
)

// Stream is one admitted request being serviced by a disk.
type Stream struct {
	id         int
	req        workload.Request
	place      catalog.Placement
	nAtArrival int        // requests in service at its arrival (Fig. 11's x-axis)
	required   si.Bits    // total data the user will consume: CR · viewing
	delivered  si.Bits    // data read from disk so far
	size       si.Bits    // most recent allocated buffer size
	lastFill   si.Bits    // amount of the in-flight or most recent fill
	deadline   si.Seconds // cached pool EmptyAt, refreshed at each fill
	lastFillAt si.Seconds // completion time of the most recent fill
	firstFill  si.Seconds
	started    bool // first fill has landed
	active     bool // still owned by the disk
	doomed     bool // departed mid-service; remove at completion
	group      int  // GSS group index
}

// ID returns the stream's request ID.
func (st *Stream) ID() int { return st.id }

// Req returns the request the stream serves.
func (st *Stream) Req() workload.Request { return st.req }

// NAtArrival reports how many requests were in service on the stream's
// disk when it arrived (Fig. 11's x-axis).
func (st *Stream) NAtArrival() int { return st.nAtArrival }

// Required is the total data the viewer will consume: CR · viewing time.
func (st *Stream) Required() si.Bits { return st.required }

// Delivered is the data read from disk so far (including the in-flight
// fill once it has been issued).
func (st *Stream) Delivered() si.Bits { return st.delivered }

// Size is the stream's most recently allocated buffer size.
func (st *Stream) Size() si.Bits { return st.size }

// Started reports whether the stream's first fill has landed.
func (st *Stream) Started() bool { return st.started }

// needService reports whether the stream still has data to fetch.
func (st *Stream) needService() bool {
	return st.active && st.delivered < st.required
}

// queued is an accepted request waiting for admission (deferral under the
// dynamic scheme's enforcement, or simply for the next service slot).
type queued struct {
	req        workload.Request
	nAtArrival int
}

// estEntry is a pending prediction check: at start a buffer was allocated
// with kc estimated additional requests over its usage period; once the
// period closes, the estimate is compared with actual arrivals.
type estEntry struct {
	start, end si.Seconds
	kc         int
}

// Disk runs one disk's streaming service: its scheduler, allocator
// bookkeeping, admission control, and buffer pool.
type Disk struct {
	sys   *System
	id    int
	clock Clock
	disk  *diskmodel.Disk
	pool  *buffer.Pool

	streams []*Stream
	queue   []queued
	book    *core.Book
	est     *core.Estimator

	sched Scheduler

	busy    bool
	current *Stream
	wake    Timer

	// k_log caching: the two-pointer window scan is recomputed only when
	// new arrivals landed or the cache is older than klogRefresh.
	kcDirty   bool
	klogCache int
	klogAt    si.Seconds

	lastPeriod si.Seconds // usage period of the last allocated buffer

	// arrival histories: arrivals feeds k_log (every arrival, as the
	// estimator sees the raw stream); estArrivals feeds estimation-success
	// accounting and holds only arrivals the system accepts — a request
	// rejected outright at capacity is never serviced, so it is not an
	// "additional request" the prediction needs to cover.
	arrivals    []si.Seconds
	estArrivals []si.Seconds
	pending     []estEntry

	// scratch buffers reused across dispatches.
	deadlineScratch []float64
}

// klogRefresh bounds how stale the cached k_log may get between arrivals:
// the window only slides, so k_log can only decrease while no arrivals
// come, and a short staleness is harmless.
const klogRefresh = si.Seconds(10)

func newDisk(sys *System, id int) *Disk {
	d := &Disk{
		sys:   sys,
		id:    id,
		clock: sys.clock,
		disk:  diskmodel.NewDisk(sys.cfg.Spec, sys.cfg.Seed*1000003+int64(id)),
		pool:  buffer.NewPagedPool(0, sys.cfg.PageSize),
		book:  core.NewBook(),
		est:   core.NewEstimator(sys.cfg.TLog),
	}
	// A sane initial period guess: the usage period of the smallest
	// dynamic buffer. Updated at every allocation.
	d.lastPeriod = sys.params.UsagePeriod(sys.sizeFor(d, 1, sys.params.Alpha))
	if sys.cfg.NewScheduler != nil {
		d.sched = sys.cfg.NewScheduler(d)
	} else {
		d.sched = NewScheduler(d)
	}
	d.pool.SetUnderrunFunc(func(now, gap si.Seconds) {
		sys.obs.OnUnderrun(d.id, now, gap)
	})
	return d
}

func (d *Disk) now() si.Seconds { return d.clock.Now() }

// ID reports the disk's index in the system.
func (d *Disk) ID() int { return d.id }

// n reports the number of requests in service on this disk.
func (d *Disk) n() int { return len(d.streams) }

// InService reports the number of requests in service on this disk.
func (d *Disk) InService() int { return len(d.streams) }

// QueueLen reports accepted requests still waiting for admission.
func (d *Disk) QueueLen() int { return len(d.queue) }

// committed reports requests in service plus accepted-but-deferred ones,
// the count capacity rejection uses.
func (d *Disk) committed() int { return len(d.streams) + len(d.queue) }

// Committed reports requests in service plus accepted-but-deferred ones.
func (d *Disk) Committed() int { return len(d.streams) + len(d.queue) }

// BookLen reports the number of inertia-book entries (dynamic scheme).
func (d *Disk) BookLen() int { return d.book.Len() }

// Pool returns the disk's buffer pool.
func (d *Disk) Pool() *buffer.Pool { return d.pool }

// DiskStats returns the disk model's operation counters.
func (d *Disk) DiskStats() diskmodel.ReadStats { return d.disk.Stats() }

// Streams returns the streams in service, in admission order. The slice
// is the disk's own — callers must not mutate it.
func (d *Disk) Streams() []*Stream { return d.streams }

// onArrival handles a request arriving at this disk: record it for the
// estimator, reject it when the disk or the admission gate is full, else
// accept it into the deferral queue and try to dispatch.
func (d *Disk) onArrival(req workload.Request) {
	now := d.now()
	d.arrivals = append(d.arrivals, now)
	d.est.RecordArrival(now)
	d.kcDirty = true
	d.resolveEstimates(now)

	if d.committed() >= d.sys.params.N {
		d.sys.obs.OnReject(d.id, req, RejectCapacity, now)
		return
	}
	if g := d.sys.gate; g != nil && !g.TryAdmit(d) {
		d.sys.obs.OnReject(d.id, req, RejectMemory, now)
		return
	}
	d.estArrivals = append(d.estArrivals, now)
	d.queue = append(d.queue, queued{req: req, nAtArrival: d.n()})
	d.dispatch()
}

// Cancel withdraws a request by ID, whether it is still queued for
// admission or already in service. The live driver uses it for viewers
// that hang up or time out; the simulator never cancels, so simulation
// schedules are unaffected.
func (d *Disk) Cancel(id int) {
	for i, q := range d.queue {
		if q.req.ID == id {
			d.queue = append(d.queue[:i], d.queue[i+1:]...)
			if g := d.sys.gate; g != nil {
				g.Release(d)
			}
			return
		}
	}
	for _, st := range d.streams {
		if st.id == id {
			d.depart(st)
			return
		}
	}
}

// admitFromQueue moves accepted requests into service while the scheme's
// admission control allows it.
func (d *Disk) admitFromQueue() {
	for len(d.queue) > 0 {
		n := d.n()
		if n >= d.sys.params.N {
			return
		}
		if !d.sys.cfg.Allocator.Admit(d, n) {
			d.sys.obs.OnDefer(d.id, d.now())
			return
		}
		q := d.queue[0]
		d.queue = d.queue[:copy(d.queue, d.queue[1:])]
		st := &Stream{
			id:         q.req.ID,
			req:        q.req,
			place:      d.sys.cfg.Library.Placement(q.req.Video),
			nAtArrival: q.nAtArrival,
			required:   maxBits(d.sys.cfg.CR.DataIn(q.req.Viewing), 1),
			deadline:   d.now(), // fresh: due immediately
			firstFill:  -1,
			active:     true,
		}
		d.streams = append(d.streams, st)
		d.pool.Attach(st.id, d.sys.cfg.CR, d.now())
		d.sched.Admit(st)
		d.sys.obs.OnAdmit(d.id, st, d.now())
	}
}

// removeStream detaches a departed stream from every structure and frees
// its capacity.
func (d *Disk) removeStream(st *Stream) {
	if !st.active {
		return
	}
	st.active = false
	d.pool.Detach(st.id, d.now())
	d.book.Remove(st.id)
	for i, o := range d.streams {
		if o == st {
			d.streams = append(d.streams[:i], d.streams[i+1:]...)
			break
		}
	}
	d.sched.Remove(st)
	d.sys.obs.OnDepart(d.id, st, d.now())
	if g := d.sys.gate; g != nil {
		g.Release(d)
	}
	d.dispatch()
}

// dispatch is the disk's main decision point: admit what the scheduler's
// timing allows, pick the next service, and either start it, sleep until
// its lazy start time, or go idle.
func (d *Disk) dispatch() {
	if d.busy {
		return
	}
	if d.wake != nil {
		d.wake.Cancel()
		d.wake = nil
	}
	if d.sched.CanAdmit() {
		d.admitFromQueue()
	}
	st, startAt := d.sched.Next(d.now())
	if st == nil {
		return // idle: the next arrival or departure re-dispatches
	}
	if startAt > d.now() {
		d.wake = d.clock.Schedule(startAt, d.dispatch)
		return
	}
	d.beginService(st)
}

// beginService allocates the buffer for st per the configured scheme and
// starts the disk read.
func (d *Disk) beginService(st *Stream) {
	now := d.now()
	n := d.n()
	size := d.sys.cfg.Allocator.Size(d, st, n)
	st.size = size
	fill := size
	if rem := st.required - st.delivered; fill > rem {
		fill = rem
	}
	// Use-it-and-toss-it: the buffer never holds more than one allocation;
	// a refill only replenishes what the stream has consumed. A member
	// swept early may need nothing at all — skip the disk entirely.
	if room := size - d.pool.Level(st.id, now); fill > room {
		fill = room
	}
	if fill <= 0 {
		d.sched.OnServiced(st)
		d.dispatch()
		return
	}
	cyl := d.sys.cfg.Spec.CylinderOf(st.place.DiskOffset(st.delivered, fill))
	if !d.pool.BeginFill(st.id, fill, now) {
		// Only possible with a hard pool budget (not used by System runs,
		// which admit by formula); retry shortly and count the stall.
		d.sys.obs.OnStall(d.id, now)
		d.wake = d.clock.After(d.sys.cfg.Spec.MaxRotational, d.dispatch)
		return
	}
	st.delivered += fill
	st.lastFill = fill
	dur := d.disk.Read(cyl, fill)
	d.busy = true
	d.current = st
	d.sys.obs.OnFill(d.id, st, now, dur, fill, d.pool.EmptyAt(st.id))
	d.clock.After(dur, func() { d.completeService(st) })
}

// completeService lands the fill, records first-fill latency, schedules
// the departure, and moves on.
func (d *Disk) completeService(st *Stream) {
	now := d.now()
	d.pool.CompleteFill(st.id, now)
	st.deadline = d.pool.EmptyAt(st.id)
	st.lastFillAt = now
	d.busy = false
	d.current = nil
	d.sys.obs.OnFillComplete(d.id, st, st.lastFill, now)
	if !st.started {
		st.started = true
		st.firstFill = now
		d.sys.obs.OnStart(d.id, st, now)
		d.clock.Schedule(now+st.req.Viewing, func() { d.depart(st) })
	}
	d.sched.OnServiced(st)
	if st.doomed {
		st.doomed = false
		d.removeStream(st)
		return // removeStream dispatched already
	}
	d.dispatch()
}

// depart handles the end of a request's viewing time.
func (d *Disk) depart(st *Stream) {
	if !st.active {
		return
	}
	if d.current == st {
		st.doomed = true // finish the in-flight service first
		return
	}
	d.removeStream(st)
}

// recordEstimate logs a (kc, usage period) pair for later success checking
// and refreshes the rolling period estimate.
func (d *Disk) recordEstimate(size si.Bits, kc int) {
	now := d.now()
	t := d.sys.params.UsagePeriod(size)
	d.lastPeriod = t
	d.pending = append(d.pending, estEntry{start: now, end: now + t, kc: kc})
	d.sys.obs.OnEstimate(d.id, kc, size, now)
}

// Estimate computes kc per Fig. 5 Step 4, exactly as the paper states it:
// min(k_log + alpha, min_i(k_i) + alpha), with the k_log window scan
// cached between arrivals. kc is not clamped to the spare capacity — the
// sizing table saturates at full load for any k >= N−n (the recurrence
// chain clamps at N), and clamping the prediction itself would starve the
// inertia book of realistic snapshots under heavy load.
func (d *Disk) Estimate(n int) int {
	now := d.now()
	if d.kcDirty || now-d.klogAt > klogRefresh {
		d.klogCache = d.est.KLog(now, d.lastPeriod)
		d.klogAt = now
		d.kcDirty = false
	}
	p := d.sys.params
	kc := d.klogCache + p.Alpha
	if minK := d.book.MinK(); minK <= 2*p.N {
		if ceil := minK + p.Alpha; ceil < kc {
			kc = ceil
		}
	}
	if kc < 0 {
		kc = 0
	}
	return kc
}

// ResolveEstimates settles prediction checks whose window has closed:
// an estimate succeeds when kc is at least the number of actual arrivals
// within the usage period (Section 5.1's "successful estimation").
func (d *Disk) ResolveEstimates(now si.Seconds) { d.resolveEstimates(now) }

func (d *Disk) resolveEstimates(now si.Seconds) {
	i := 0
	for ; i < len(d.pending); i++ {
		e := d.pending[i]
		if e.end > now {
			break
		}
		actual := d.countArrivals(e.start, e.end)
		d.sys.obs.OnEstimateResolved(d.id, e.kc >= actual, now)
	}
	if i > 0 {
		d.pending = append(d.pending[:0], d.pending[i:]...)
	}
}

// countArrivals counts accepted arrivals in (lo, hi] by binary search
// over the in-order log.
func (d *Disk) countArrivals(lo, hi si.Seconds) int {
	a := d.estArrivals
	i := sort.Search(len(a), func(i int) bool { return a[i] > lo })
	j := sort.Search(len(a), func(i int) bool { return a[i] > hi })
	return j - i
}

// worstService bounds the duration of one service at load n: the method's
// worst disk latency plus the transfer of the size the allocator would
// plan for right now.
func (d *Disk) worstService(n int) si.Seconds {
	if n < 1 {
		n = 1
	}
	size := d.sys.cfg.Allocator.PlanSize(d, n)
	return d.sys.cfg.Method.WorstDL(d.sys.cfg.Spec, n) + d.sys.cfg.Spec.TransferRate.TimeToTransfer(size)
}

// deadlineOf reports when a stream's buffer runs dry (fresh streams are
// due immediately). It reads the cached value refreshed at each fill,
// saving a pool lookup on every scheduling decision.
func (d *Disk) deadlineOf(st *Stream) si.Seconds { return st.deadline }

// roomAt reports the earliest time a refill of st is worthwhile: when the
// buffer has drained to a quarter of its last allocation. Scheduling
// cushions must never outpace consumption — for tiny dynamic buffers the
// cushion can exceed a whole usage period, and without this floor the
// scheduler would spin refilling already-full buffers.
func (d *Disk) roomAt(st *Stream) si.Seconds {
	if st.size <= 0 {
		return 0 // fresh stream: fillable immediately
	}
	return d.deadlineOf(st) - si.Seconds(0.75*float64(d.sys.params.UsagePeriod(st.size)))
}

// lazyMarginServices is the safety cushion applied to lazy starts,
// measured in worst-case service times. Perfectly just-in-time refilling
// leaves no room to absorb a newly admitted stream's immediate first fill
// (the real Fixed-Stretch/BubbleUp schedule keeps that room as free
// slots); refilling two services early restores it at a memory cost of
// 2·w·CR per stream, a couple of percent of a buffer.
const lazyMarginServices = 2

// latestStart computes the safe lazy start for servicing a batch of
// streams sequentially when the service order may be adversarial with
// respect to deadlines: every deadline d_(i) (sorted ascending) must allow
// i services of duration w first, so start <= min_i(d_(i) − i·w), minus
// the safety cushion.
func (d *Disk) latestStart(deadlines []float64, w si.Seconds) si.Seconds {
	sort.Float64s(deadlines)
	best := si.Seconds(deadlines[0]) - w
	for i, dl := range deadlines {
		if cand := si.Seconds(dl) - si.Seconds(i+1)*w; cand < best {
			best = cand
		}
	}
	return best - lazyMarginServices*w
}

func maxBits(a, b si.Bits) si.Bits {
	if a > b {
		return a
	}
	return b
}

// sanity check helper used in tests.
func (d *Disk) invariants() error {
	if len(d.streams) > d.sys.params.N {
		return fmt.Errorf("engine: disk %d exceeds N with %d streams", d.id, len(d.streams))
	}
	return nil
}
