package engine

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/si"
)

// Eight shards driven by eight goroutines at once: every shard's
// callbacks and Do calls are serialized against each other (per-shard
// non-atomic counters never tear under -race), shards never block each
// other, and every scheduled timer either fires or is canceled.
func TestWallShardsConcurrentScheduleCancelFire(t *testing.T) {
	c := NewWallClockTick(10000, 100*time.Microsecond)
	defer c.Stop()
	const shards = 8
	const perShard = 200
	counts := make([]int, shards)
	var wg sync.WaitGroup
	var fired sync.WaitGroup
	for i := 0; i < shards; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := c.Shard(i)
			for j := 0; j < perShard; j++ {
				switch j % 3 {
				case 0: // near-future timer that must fire
					fired.Add(1)
					s.Do(func() {
						s.After(si.Seconds(1+j%5), func() {
							counts[i]++ // serialized by the shard's lock
							fired.Done()
						})
					})
				case 1: // far-future timer canceled immediately
					var tm Timer
					s.Do(func() { tm = s.After(si.Seconds(3600), func() { counts[i]++ }) })
					tm.Cancel()
				default: // plain engine-lock work interleaved with firing
					s.Do(func() { counts[i]++ })
				}
			}
		}(i)
	}
	wg.Wait()
	done := make(chan struct{})
	go func() { fired.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("scheduled timers never all fired")
	}
	if got := c.Shards(); got != shards {
		t.Fatalf("Shards() = %d, want %d", got, shards)
	}
	for i := 0; i < shards; i++ {
		var got, pending int
		c.Shard(i).Do(func() { got = counts[i] })
		pending = c.Shard(i).PendingTimers()
		if got == 0 {
			t.Errorf("shard %d: no callbacks ran", i)
		}
		if pending != 0 {
			t.Errorf("shard %d: %d timers still pending after fire/cancel", i, pending)
		}
	}
}

// A Timer handle outlives the timer it names: once the timer fires and
// its pooled wallTimer is recycled for a new scheduling, the stale
// handle's Cancel must be a no-op on the slot's new occupant — including
// when the stale handle is canceled from another goroutine.
func TestWallTimerStaleHandleAfterRecycle(t *testing.T) {
	c := NewWallClockTick(10000, 100*time.Microsecond)
	defer c.Stop()
	s := c.Shard(0)

	firstFired := make(chan struct{})
	var first Timer
	s.Do(func() { first = s.After(1, func() { close(firstFired) }) })
	select {
	case <-firstFired:
	case <-time.After(5 * time.Second):
		t.Fatal("first timer never fired")
	}

	// The fired timer is back on the freelist; the next scheduling must
	// reuse it (that is the pooling contract this test pins down).
	if s.FreeListLen() == 0 {
		t.Fatal("fired timer was not pooled")
	}
	secondFired := make(chan struct{})
	var second Timer
	s.Do(func() { second = s.After(2, func() { close(secondFired) }) })
	if first.wt != second.wt {
		t.Fatal("second scheduling did not reuse the pooled timer")
	}

	first.Cancel() // stale: generation moved on with the recycle
	select {
	case <-secondFired:
	case <-time.After(5 * time.Second):
		t.Fatal("recycled timer was killed by a stale handle's Cancel")
	}

	// Double-cancel and post-fire cancel are no-ops too.
	second.Cancel()
	second.Cancel()
}

// Stale handles must stay harmless across shards: handles issued by one
// shard name that shard's pool only, and canceling them concurrently
// with another shard's traffic must neither panic nor kill anything.
func TestWallTimerStaleHandlesAcrossShards(t *testing.T) {
	c := NewWallClockTick(10000, 100*time.Microsecond)
	defer c.Stop()
	const n = 64
	stale := make([]Timer, 0, 2*n)
	var mu sync.Mutex
	var fired sync.WaitGroup
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := c.Shard(i)
			for j := 0; j < n; j++ {
				var tm Timer
				ch := make(chan struct{})
				s.Do(func() { tm = s.After(si.Seconds(j%3), func() { close(ch) }) })
				<-ch
				mu.Lock()
				stale = append(stale, tm) // fired: handle now stale
				mu.Unlock()
			}
			// Live traffic that stale cancels must not disturb.
			fired.Add(1)
			s.Do(func() { s.After(1, fired.Done) })
		}(i)
	}
	wg.Add(1)
	go func() { // concurrent stale-cancel storm
		defer wg.Done()
		for k := 0; k < 4*n; k++ {
			mu.Lock()
			for _, tm := range stale {
				tm.Cancel()
			}
			mu.Unlock()
		}
	}()
	wg.Wait()
	done := make(chan struct{})
	go func() { fired.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("live timers lost to stale cancels")
	}
}

// Scheduling on a warm shard allocates nothing: the timer comes off the
// freelist and the handle is a value. This is the live path's per-fill
// cost, so it is pinned at exactly zero.
func TestWallShardSteadyStateAllocFree(t *testing.T) {
	c := NewWallClock(1) // slow scale: nothing fires during the test
	defer c.Stop()
	s := c.Shard(0)
	// Warm the pool and the wheel's occupied paths.
	tm := s.Schedule(si.Seconds(7200), func() {})
	tm.Cancel()
	allocs := testing.AllocsPerRun(2000, func() {
		tm := s.Schedule(si.Seconds(7200), func() {})
		tm.Cancel()
	})
	if allocs != 0 {
		t.Errorf("warm schedule+cancel allocates %.1f objects/op, want 0", allocs)
	}
	if s.PendingTimers() != 0 {
		t.Errorf("%d timers leaked", s.PendingTimers())
	}
	if s.FreeListLen() == 0 {
		t.Error("freelist empty after churn; pooling is broken")
	}
}

// FIFO within a tick: timers scheduled for the same instant fire in
// scheduling order, like the virtual clock's sequence tie-break.
func TestWallShardSameTickFIFO(t *testing.T) {
	c := NewWallClockTick(1000, time.Millisecond)
	defer c.Stop()
	s := c.Shard(0)
	var order []int
	done := make(chan struct{})
	s.Do(func() {
		at := c.Now() + 50
		for i := 0; i < 10; i++ {
			i := i
			s.Schedule(at, func() {
				order = append(order, i)
				if len(order) == 10 {
					close(done)
				}
			})
		}
	})
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("same-tick batch never fired")
	}
	s.Do(func() {
		for i, got := range order {
			if got != i {
				t.Fatalf("fire order %v, want scheduling order", order)
				return
			}
		}
	})
}

// The point of sharding: scheduling throughput must scale when eight
// goroutines hammer eight shards instead of one. The threshold is the
// acceptance bar (2x at 8 disks); actual scaling is closer to linear.
func TestWallClockShardContentionScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive scaling measurement")
	}
	if runtime.GOMAXPROCS(0) < 8 {
		t.Skipf("GOMAXPROCS %d < 8: contention cannot parallelize", runtime.GOMAXPROCS(0))
	}
	const goroutines = 8
	const ops = 30000
	churn := func(shardOf func(int) *WallShard) time.Duration {
		var wg sync.WaitGroup
		start := time.Now()
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				s := shardOf(g)
				for i := 0; i < ops; i++ {
					s.Schedule(si.Seconds(3600+i%64), func() {}).Cancel()
				}
			}(g)
		}
		wg.Wait()
		return time.Since(start)
	}
	best := func(shardOf func(int) *WallShard) time.Duration {
		min := time.Duration(1<<63 - 1)
		for trial := 0; trial < 3; trial++ {
			if d := churn(shardOf); d < min {
				min = d
			}
		}
		return min
	}
	single := NewWallClock(1)
	defer single.Stop()
	sharded := NewWallClock(1)
	defer sharded.Stop()
	s0 := single.Shard(0)
	oneShard := best(func(int) *WallShard { return s0 })
	perShard := best(func(g int) *WallShard { return sharded.Shard(g) })
	speedup := float64(oneShard) / float64(perShard)
	t.Logf("schedule/cancel churn: 1 shard %v, 8 shards %v, speedup %.1fx", oneShard, perShard, speedup)
	if speedup < 2 {
		t.Errorf("8-shard speedup %.2fx, want >= 2x over the single-shard baseline", speedup)
	}
}
