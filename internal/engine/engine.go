// Package engine is the clock-abstracted streaming runtime of the
// reproduction: the scheme-agnostic machinery that admits requests, sizes
// and schedules buffer fills, paces disk reads, and enforces the paper's
// predict-and-enforce dynamic allocation — independent of whether time is
// virtual or real.
//
// The engine is deliberately a library with two drivers:
//
//   - internal/sim feeds it a workload.Trace under a VirtualClock and
//     collects a Result through an Observer — the discrete-event
//     simulation reproducing the paper's evaluation (Section 5).
//   - cmd/vodserver feeds it live TCP requests under a WallClock and
//     relays completed fills to viewers — a real server running the very
//     same admission/allocation code the experiments validate.
//
// The pluggable pieces are the Clock (virtual or scaled wall time), the
// Scheduler (Round-Robin/BubbleUp, Sweep*, GSS* — Section 2.2), the
// Allocator (static, dynamic, naive, DYBASE — Sections 2.3 and 3), the
// Observer instrumentation fan-out, and an optional admission Gate (the
// capacity experiments' shared-memory governor). Everything else — the
// per-disk service loop, the deferral queue, the prediction-estimate
// bookkeeping — is the invariant core.
package engine

import (
	"fmt"
	"sync"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/diskmodel"
	"repro/internal/sched"
	"repro/internal/si"
	"repro/internal/workload"
)

// Gate is an optional admission hook consulted after capacity: the
// capacity experiments' shared-memory governor reserves the analytical
// minimum memory for a disk's committed load and rejects arrivals whose
// reservation would exceed the budget (Figs. 13-14).
type Gate interface {
	// TryAdmit attempts to reserve resources for one more committed
	// request on d's disk; false rejects the arrival.
	TryAdmit(d *Disk) bool
	// Release refreshes d's reservation after a departure.
	Release(d *Disk)
}

// Config parameterizes an engine System.
type Config struct {
	// Clock supplies time and callback scheduling: each disk runs on
	// Clock.DiskClock(disk). A VirtualClock is a single-shard domain
	// (all disks on one deterministic event loop); a WallClock gives
	// every disk its own concurrent shard. Required.
	Clock ClockDomain

	// Allocator is the buffer allocation scheme. Required.
	Allocator Allocator

	// Method selects the buffer scheduling method (Section 2.2). The
	// default Scheduler factory maps it to Round-Robin/Sweep*/GSS*.
	Method sched.Method

	// NewScheduler overrides the Scheduler a disk runs; nil uses the
	// method's standard implementation.
	NewScheduler func(*Disk) Scheduler

	// Spec is the disk model; every disk in the system is identical.
	Spec diskmodel.Spec

	// CR is the streams' default consumption rate — the rate of every
	// request that does not carry its own (workload.Request.Rate == 0),
	// and the paper's single global rate.
	CR si.BitRate

	// Rates lists the additional per-stream consumption rates the system
	// must be able to serve: the union of the library's ladder rungs.
	// Each rate gets its own memoized sizing tables (DeriveN, Theorem 1
	// recurrence, Eq. 5, DYBASE) built at construction. Duplicates and
	// rates equal to CR are dropped; an empty normalized set leaves the
	// engine in the paper's uniform-rate mode, which runs exactly the
	// single-rate code paths — the oracle tests pin this.
	Rates []si.BitRate

	// Downgrade enables downgrading admission (arXiv:1604.00894): an
	// arrival whose requested rung does not fit the disk's predicted
	// capacity is stepped down its title's bitrate ladder to the first
	// rung that does, and only rejected when none fits. Requires Rates
	// (a uniform-rate system has no lower rungs to step to).
	Downgrade bool

	// Adapt, when non-nil, enables mid-stream bitrate adaptation: at the
	// start of each service the disk may step a started stream down its
	// title's ladder when its buffer occupancy falls inside the reservoir,
	// and back up toward the requested rung on sustained bandwidth
	// headroom (see AdaptConfig). Requires Rates — a uniform-rate system
	// has no rungs to switch across. Nil runs the admission-time-only
	// ladder paths unchanged.
	Adapt *AdaptConfig

	// Alpha is the dynamic scheme's inertia slack (>= 1).
	Alpha int

	// ChurnSafeAdmission tightens the dynamic scheme's runtime
	// enforcement from Fig. 5's concurrency form — n+1 ≤ min_i(n_i+k_i)
	// — to per-buffer admission budgets: at most k_i requests may enter
	// service between buffer i's consecutive fills (core.AdmitBudget).
	// The two rules are equivalent while no stream departs inside an
	// open usage period, which the paper's two-hour titles guarantee;
	// with short titles at modern-disk loads, usage periods stretch to
	// minutes and replacement churn injects first fills the concurrency
	// form never counts, voiding the sizing guarantee. Scenarios in that
	// regime set this. Only the dynamic allocator consults it.
	ChurnSafeAdmission bool

	// DeadlineAwareBubbleUp gates Round-Robin/BubbleUp's immediate
	// service of newcomers on the started backlog's schedule: a fresh
	// stream is serviced at once only when the latest safe start of the
	// pending refills leaves room for the inserted service. The paper's
	// BubbleUp checks only the earliest deadline, which is sound while
	// buffer sizes are stable between refill generations; at modern
	// scale, growing loads compress a refill generation's deadline
	// spacing below the next generation's service time, and newcomers
	// inserted mid-catch-up push the tail of the backlog past its
	// deadlines. Scenarios in that regime set this alongside
	// ChurnSafeAdmission.
	DeadlineAwareBubbleUp bool

	// RampAwarePlanning makes the dynamic scheme's worst-case service
	// planning assume the admission window's full load instead of the
	// current one. Theorem 1 sizes a buffer's usage period to cover
	// n+k services of BS_{k+α}(n+k) — services at the load the window
	// may REACH — but PlanSize at load n feeds the lazy-start and
	// cushion math services of BS(n), which is what fills cost only if
	// no admission lands. On a fast ramp the k admissions do land, each
	// mid-round fill allocates above plan, and the wake computed from
	// the smaller services leaves the round's tail short by about
	// n·(BS(n+k)−BS(n))/TR — underruns with the disk 100% busy. With
	// this set, planning evaluates at min_i(n_i+k_i), the largest load
	// any in-window allocation can see, restoring the theorem's
	// accounting. Scenarios driving hard ramps set it alongside
	// ChurnSafeAdmission; only the dynamic allocator consults it.
	RampAwarePlanning bool

	// TLog is the arrival-history window for k estimation.
	TLog si.Seconds

	// Library provides titles, placement, and the disk count.
	Library *catalog.Library

	// PageSize accounts buffer memory in whole pages of this size
	// (0 = exact variable-length accounting, the paper's simplification).
	PageSize si.Bits

	// UnderrunTolerance overrides the buffer pools' underrun grace in
	// engine seconds (0 = buffer.UnderrunTolerance, the model's
	// millisecond). Live drivers running the engine under a compressed
	// wall clock set this to the model grace times the compression, so a
	// fill landing within a wall millisecond of its deadline still counts
	// as the hand-to-mouth refill the schedule planned — not as the OS's
	// scheduling latency charged to the paper's admission model.
	UnderrunTolerance si.Seconds

	// DisableBubbleUp runs the Round-Robin method as plain Fixed-Stretch
	// (Section 2.2.1). Ignored by Sweep* and GSS*.
	DisableBubbleUp bool

	// Seed feeds the disks' rotational-delay streams.
	Seed int64

	// SizeTable, when non-nil, supplies the precomputed dynamic sizing
	// table instead of building one. The table is immutable after
	// construction and the build is O(N²·√N), so callers running many
	// systems with identical (Spec, Method, CR, Alpha) — the experiment
	// harness's replications — share one. It must have been built with
	// NewTable under exactly this config's parameters and latency model;
	// New rejects tables whose parameters or full-load size disagree.
	SizeTable *core.Table

	// Observer receives instrumentation callbacks; nil observes nothing.
	Observer Observer

	// Gate, when set, is consulted on every arrival after the capacity
	// check and released on departures.
	Gate Gate
}

// System is a group of disks sharing one clock domain, allocator, and
// parameter set — the runtime a driver feeds requests into.
type System struct {
	cfg        Config
	domain     ClockDomain
	obs        Observer
	gate       Gate
	params     core.Params
	table      *core.Table
	naiveOnce  sync.Once
	naiveTab   *core.Table // lazily memoized Eq. 5 sizes (naive scheme)
	dybaseOnce sync.Once
	dybaseTab  *core.Table // lazily memoized DYBASE recurrence sizes
	staticSize si.Bits
	disks      []*Disk

	// multi holds one sizing context per distinct stream rate (including
	// CR) when Config.Rates normalizes non-empty; nil in uniform mode,
	// where streams carry no context and every sizing decision takes the
	// legacy single-rate path above.
	multi map[si.BitRate]*rateCtx
	// ctxs lists the same contexts in construction order (base CR first);
	// rateCtx.idx indexes it, as does each disk's live-stream counter.
	// Worst-case planning walks it, bounding over the rates actually in
	// service rather than the widest configured rate — a hypothetical
	// slow-rate stream near its own capacity knee would otherwise inflate
	// every plan and wreck the schedule for the streams that exist.
	ctxs    []*rateCtx
	planCtx *rateCtx // widest-buffer context: layout checks (planStatic)

	// adapt is the normalized mid-stream adaptation policy; nil when
	// adaptation is off, in which case no switching code runs at all.
	adapt *AdaptConfig

	// admitCap is the committed-stream count capacity arrivals are
	// rejected at: N in uniform mode, DeriveN at the smallest rate in
	// multi-rate mode, lowered by a capping allocator (KneeAllocator).
	admitCap int
	// bwCap is the committed consumption-bandwidth capacity of a disk in
	// multi-rate mode (Σ rates must stay strictly below it, generalizing
	// N·CR < TR): the transfer rate, lowered by a capping allocator.
	bwCap si.BitRate
}

// rateCtx is one consumption rate's sizing context: its derived
// parameters (own N = DeriveN(TR, rate)) and the per-scheme memoized
// sizing tables, mirroring the System's single-rate fields. The naive
// and DYBASE tables are built lazily under a Once because disks on
// different shards of a multi-shard clock domain race to trigger them.
type rateCtx struct {
	idx        int // position in System.ctxs; indexes Disk.rateLive
	rate       si.BitRate
	params     core.Params
	table      *core.Table
	naiveOnce  sync.Once
	naiveTab   *core.Table
	dybaseOnce sync.Once
	dybaseTab  *core.Table
	staticSize si.Bits
}

// New builds a System: derives the sizing parameters from the disk and
// consumption rate (Eq. 1), precomputes the dynamic size table
// (Section 3.3), and creates one Disk per library disk.
func New(cfg Config) (*System, error) {
	if cfg.Clock == nil {
		return nil, fmt.Errorf("engine: config needs a clock")
	}
	if cfg.Allocator == nil {
		return nil, fmt.Errorf("engine: config needs an allocator")
	}
	if cfg.Library == nil {
		return nil, fmt.Errorf("engine: config needs a library")
	}
	if err := cfg.Spec.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Method.Validate(); err != nil {
		return nil, err
	}
	if cfg.CR <= 0 || cfg.CR >= cfg.Spec.TransferRate {
		return nil, fmt.Errorf("engine: consumption rate %v outside (0, TR)", cfg.CR)
	}
	for i, r := range cfg.Rates {
		if r <= 0 || r >= cfg.Spec.TransferRate {
			return nil, fmt.Errorf("engine: stream rate %v (Rates[%d] of %d) outside (0, TR=%v)",
				r, i, len(cfg.Rates), cfg.Spec.TransferRate)
		}
	}
	if cfg.TLog <= 0 {
		return nil, fmt.Errorf("engine: non-positive TLog %v", cfg.TLog)
	}
	sys := &System{cfg: cfg, domain: cfg.Clock, gate: cfg.Gate}
	sys.obs = cfg.Observer
	if sys.obs == nil {
		sys.obs = NopObserver{}
	}
	sys.params = core.Params{
		TR:    cfg.Spec.TransferRate,
		CR:    cfg.CR,
		N:     core.DeriveN(cfg.Spec.TransferRate, cfg.CR),
		Alpha: cfg.Alpha,
	}
	if err := sys.params.Validate(); err != nil {
		return nil, err
	}
	sys.staticSize = sys.params.StaticSize(cfg.Method.WorstDL(cfg.Spec, sys.params.N), sys.params.N)
	if cfg.SizeTable != nil {
		if cfg.SizeTable.Params() != sys.params {
			return nil, fmt.Errorf("engine: shared sizing table built for %+v, config derives %+v",
				cfg.SizeTable.Params(), sys.params)
		}
		// The parameters don't capture the latency model; probe the
		// full-load boundary, which every correctly built table pins to
		// the method's worst disk latency at N.
		if got := cfg.SizeTable.Size(sys.params.N, 0); got != sys.staticSize {
			return nil, fmt.Errorf("engine: shared sizing table full-load size %v, method/spec derive %v",
				got, sys.staticSize)
		}
		sys.table = cfg.SizeTable
	} else {
		sys.table = core.NewTable(sys.params, cfg.Method.DLModel(cfg.Spec))
	}
	// Normalize the per-stream rate set: duplicates and rates equal to
	// the base CR collapse away. An empty normalized set is the paper's
	// single-rate regime — uniform mode, where streams carry no rate
	// context and run exactly the legacy code paths.
	var extra []si.BitRate
	for _, r := range cfg.Rates {
		dup := r == cfg.CR
		for _, e := range extra {
			dup = dup || e == r
		}
		if !dup {
			extra = append(extra, r)
		}
	}
	sys.admitCap, sys.bwCap = sys.params.N, cfg.Spec.TransferRate
	if len(extra) > 0 {
		sys.multi = make(map[si.BitRate]*rateCtx, len(extra)+1)
		base := &rateCtx{rate: cfg.CR, params: sys.params, table: sys.table, staticSize: sys.staticSize}
		sys.multi[cfg.CR] = base
		sys.ctxs = append(sys.ctxs, base)
		sys.planCtx = base
		minRate := cfg.CR
		for _, r := range extra {
			p := core.Params{
				TR:    cfg.Spec.TransferRate,
				CR:    r,
				N:     core.DeriveN(cfg.Spec.TransferRate, r),
				Alpha: cfg.Alpha,
			}
			if err := p.Validate(); err != nil {
				return nil, fmt.Errorf("engine: rate %v: %w", r, err)
			}
			c := &rateCtx{
				idx:        len(sys.ctxs),
				rate:       r,
				params:     p,
				table:      core.NewTable(p, cfg.Method.DLModel(cfg.Spec)),
				staticSize: p.StaticSize(cfg.Method.WorstDL(cfg.Spec, p.N), p.N),
			}
			sys.multi[r] = c
			sys.ctxs = append(sys.ctxs, c)
			if c.staticSize > sys.planCtx.staticSize {
				sys.planCtx = c
			}
			if r < minRate {
				minRate = r
			}
		}
		// The smallest rate admits the most concurrent streams; its N is
		// the count any sizing table can back.
		sys.admitCap = core.DeriveN(cfg.Spec.TransferRate, minRate)
	}
	if cfg.Adapt != nil {
		if sys.multi == nil {
			return nil, fmt.Errorf("engine: Adapt requires a multi-rate ladder (Config.Rates); a uniform-rate system has no rungs to switch across")
		}
		a, err := cfg.Adapt.withDefaults()
		if err != nil {
			return nil, err
		}
		sys.adapt = &a
	}
	if c, ok := cfg.Allocator.(admissionCapper); ok {
		sys.admitCap = c.AdmitCapCount(sys.admitCap)
		sys.bwCap = c.AdmitCapBandwidth(sys.bwCap)
	}
	// A chunked library must be able to serve the largest buffer the
	// server will ever allocate from a single chunk. Contiguous
	// placements impose no bound: fills are clamped inside the video.
	if maxRead := cfg.Library.ChunkedMaxRead(); maxRead < sys.planStatic() {
		return nil, fmt.Errorf("engine: library chunked max read %v below the largest buffer %v — rebuild the library with a larger MaxRead",
			maxRead, sys.planStatic())
	}
	for d := 0; d < cfg.Library.Disks(); d++ {
		sys.disks = append(sys.disks, newDisk(sys, d))
	}
	return sys, nil
}

// planStatic is the largest full-load buffer any stream may ever be
// allocated — the conservative bound layout checks and static planning
// use. In uniform mode it is BS(N) exactly.
func (sys *System) planStatic() si.Bits {
	if sys.multi != nil {
		return sys.planCtx.staticSize
	}
	return sys.staticSize
}

// ctxFor returns the sizing context for a stream rate, or nil in uniform
// mode (where every stream runs at CR on the legacy single-rate fields).
func (sys *System) ctxFor(rate si.BitRate) *rateCtx {
	if sys.multi == nil {
		return nil
	}
	return sys.multi[rate]
}

// AdmitCap reports the committed-stream count capacity of each disk.
func (sys *System) AdmitCap() int { return sys.admitCap }

// SetGate installs an admission gate. It must be set before the system
// processes arrivals (the simulator's governor needs the built System, so
// it cannot ride in on the Config).
func (sys *System) SetGate(g Gate) { sys.gate = g }

// AttachObserver composes o onto the system's observer fan-out, after any
// observer the Config carried. Like SetGate, it exists for drivers whose
// instrumentation needs the built System (the sharing layer both submits
// to the system and observes it); it must be called before the system
// processes arrivals.
func (sys *System) AttachObserver(o Observer) {
	if _, ok := sys.obs.(NopObserver); ok {
		sys.obs = o
		return
	}
	sys.obs = Observers{sys.obs, o}
}

// Clock returns the system's clock domain.
func (sys *System) Clock() ClockDomain { return sys.domain }

// Params returns the sizing parameters (TR, CR, N, alpha).
func (sys *System) Params() core.Params { return sys.params }

// StaticSize returns the full-load buffer size BS(N).
func (sys *System) StaticSize() si.Bits { return sys.staticSize }

// Table returns the precomputed dynamic sizing table.
func (sys *System) Table() *core.Table { return sys.table }

// Disks reports the number of disks.
func (sys *System) Disks() int { return len(sys.disks) }

// Disk returns the i'th disk.
func (sys *System) Disk(i int) *Disk { return sys.disks[i] }

// OnArrival routes a request to the disk holding its title and runs the
// arrival protocol: record for prediction, reject at capacity or by the
// gate, else queue for admission and dispatch.
func (sys *System) OnArrival(req workload.Request) {
	sys.disks[req.Disk].onArrival(req)
}

// sizeFor returns the dynamic buffer size for a disk at load (n, k).
// The receiver disk is unused today (all disks share one table) but
// keeps the call sites ready for per-disk heterogeneity.
func (sys *System) sizeFor(_ *Disk, n, k int) si.Bits { return sys.table.Size(n, k) }

// naiveSizeFor evaluates the naive scheme's Eq. 5 at n+k with the
// method's current-load disk latency, memoized per (n, k) on first use.
// The build is guarded by a Once because disks on different shards of a
// multi-shard clock domain race to trigger it.
func (sys *System) naiveSizeFor(n, k int) si.Bits {
	sys.naiveOnce.Do(func() {
		sys.naiveTab = core.NewTableWith(sys.params, sys.cfg.Method.DLModel(sys.cfg.Spec), core.Params.NaiveSize)
	})
	return sys.naiveTab.Size(n, k)
}

// dybaseSizeFor evaluates the DYBASE recurrence at (n, k) with the
// method's current-load disk latency. The recurrence chain is walked
// once per (n, k) — the table memoizes it, as §3.3 prescribes for the
// dynamic scheme — instead of on every fill.
func (sys *System) dybaseSizeFor(n, k int) si.Bits {
	sys.dybaseOnce.Do(func() {
		sys.dybaseTab = core.NewTableWith(sys.params, sys.cfg.Method.DLModel(sys.cfg.Spec), core.Params.DybaseSize)
	})
	return sys.dybaseTab.Size(n, k)
}

// naiveTabFor memoizes a rate context's Eq. 5 table, the per-rate analog
// of naiveSizeFor.
func (sys *System) naiveTabFor(c *rateCtx) *core.Table {
	c.naiveOnce.Do(func() {
		c.naiveTab = core.NewTableWith(c.params, sys.cfg.Method.DLModel(sys.cfg.Spec), core.Params.NaiveSize)
	})
	return c.naiveTab
}

// dybaseTabFor memoizes a rate context's DYBASE table, the per-rate
// analog of dybaseSizeFor.
func (sys *System) dybaseTabFor(c *rateCtx) *core.Table {
	c.dybaseOnce.Do(func() {
		c.dybaseTab = core.NewTableWith(c.params, sys.cfg.Method.DLModel(sys.cfg.Spec), core.Params.DybaseSize)
	})
	return c.dybaseTab
}
