// Package engine is the clock-abstracted streaming runtime of the
// reproduction: the scheme-agnostic machinery that admits requests, sizes
// and schedules buffer fills, paces disk reads, and enforces the paper's
// predict-and-enforce dynamic allocation — independent of whether time is
// virtual or real.
//
// The engine is deliberately a library with two drivers:
//
//   - internal/sim feeds it a workload.Trace under a VirtualClock and
//     collects a Result through an Observer — the discrete-event
//     simulation reproducing the paper's evaluation (Section 5).
//   - cmd/vodserver feeds it live TCP requests under a WallClock and
//     relays completed fills to viewers — a real server running the very
//     same admission/allocation code the experiments validate.
//
// The pluggable pieces are the Clock (virtual or scaled wall time), the
// Scheduler (Round-Robin/BubbleUp, Sweep*, GSS* — Section 2.2), the
// Allocator (static, dynamic, naive, DYBASE — Sections 2.3 and 3), the
// Observer instrumentation fan-out, and an optional admission Gate (the
// capacity experiments' shared-memory governor). Everything else — the
// per-disk service loop, the deferral queue, the prediction-estimate
// bookkeeping — is the invariant core.
package engine

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/diskmodel"
	"repro/internal/sched"
	"repro/internal/si"
	"repro/internal/workload"
)

// Gate is an optional admission hook consulted after capacity: the
// capacity experiments' shared-memory governor reserves the analytical
// minimum memory for a disk's committed load and rejects arrivals whose
// reservation would exceed the budget (Figs. 13-14).
type Gate interface {
	// TryAdmit attempts to reserve resources for one more committed
	// request on d's disk; false rejects the arrival.
	TryAdmit(d *Disk) bool
	// Release refreshes d's reservation after a departure.
	Release(d *Disk)
}

// Config parameterizes an engine System.
type Config struct {
	// Clock supplies time and callback scheduling. Required.
	Clock Clock

	// Allocator is the buffer allocation scheme. Required.
	Allocator Allocator

	// Method selects the buffer scheduling method (Section 2.2). The
	// default Scheduler factory maps it to Round-Robin/Sweep*/GSS*.
	Method sched.Method

	// NewScheduler overrides the Scheduler a disk runs; nil uses the
	// method's standard implementation.
	NewScheduler func(*Disk) Scheduler

	// Spec is the disk model; every disk in the system is identical.
	Spec diskmodel.Spec

	// CR is the streams' consumption rate.
	CR si.BitRate

	// Alpha is the dynamic scheme's inertia slack (>= 1).
	Alpha int

	// TLog is the arrival-history window for k estimation.
	TLog si.Seconds

	// Library provides titles, placement, and the disk count.
	Library *catalog.Library

	// PageSize accounts buffer memory in whole pages of this size
	// (0 = exact variable-length accounting, the paper's simplification).
	PageSize si.Bits

	// DisableBubbleUp runs the Round-Robin method as plain Fixed-Stretch
	// (Section 2.2.1). Ignored by Sweep* and GSS*.
	DisableBubbleUp bool

	// Seed feeds the disks' rotational-delay streams.
	Seed int64

	// Observer receives instrumentation callbacks; nil observes nothing.
	Observer Observer

	// Gate, when set, is consulted on every arrival after the capacity
	// check and released on departures.
	Gate Gate
}

// System is a group of disks sharing one clock, allocator, and parameter
// set — the runtime a driver feeds requests into.
type System struct {
	cfg        Config
	clock      Clock
	obs        Observer
	gate       Gate
	params     core.Params
	table      *core.Table
	naiveTab   *core.Table // lazily memoized Eq. 5 sizes (naive scheme)
	dybaseTab  *core.Table // lazily memoized DYBASE recurrence sizes
	staticSize si.Bits
	disks      []*Disk
}

// New builds a System: derives the sizing parameters from the disk and
// consumption rate (Eq. 1), precomputes the dynamic size table
// (Section 3.3), and creates one Disk per library disk.
func New(cfg Config) (*System, error) {
	if cfg.Clock == nil {
		return nil, fmt.Errorf("engine: config needs a clock")
	}
	if cfg.Allocator == nil {
		return nil, fmt.Errorf("engine: config needs an allocator")
	}
	if cfg.Library == nil {
		return nil, fmt.Errorf("engine: config needs a library")
	}
	if err := cfg.Spec.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Method.Validate(); err != nil {
		return nil, err
	}
	if cfg.CR <= 0 || cfg.CR >= cfg.Spec.TransferRate {
		return nil, fmt.Errorf("engine: consumption rate %v outside (0, TR)", cfg.CR)
	}
	if cfg.TLog <= 0 {
		return nil, fmt.Errorf("engine: non-positive TLog %v", cfg.TLog)
	}
	sys := &System{cfg: cfg, clock: cfg.Clock, gate: cfg.Gate}
	sys.obs = cfg.Observer
	if sys.obs == nil {
		sys.obs = NopObserver{}
	}
	sys.params = core.Params{
		TR:    cfg.Spec.TransferRate,
		CR:    cfg.CR,
		N:     core.DeriveN(cfg.Spec.TransferRate, cfg.CR),
		Alpha: cfg.Alpha,
	}
	if err := sys.params.Validate(); err != nil {
		return nil, err
	}
	sys.table = core.NewTable(sys.params, cfg.Method.DLModel(cfg.Spec))
	sys.staticSize = sys.params.StaticSize(cfg.Method.WorstDL(cfg.Spec, sys.params.N), sys.params.N)
	// A chunked library must be able to serve the largest buffer the
	// server will ever allocate from a single chunk.
	if maxRead := cfg.Library.MaxRead(); maxRead < sys.staticSize {
		return nil, fmt.Errorf("engine: library max read %v below the largest buffer %v — rebuild the library with a larger MaxRead",
			maxRead, sys.staticSize)
	}
	for d := 0; d < cfg.Library.Disks(); d++ {
		sys.disks = append(sys.disks, newDisk(sys, d))
	}
	return sys, nil
}

// SetGate installs an admission gate. It must be set before the system
// processes arrivals (the simulator's governor needs the built System, so
// it cannot ride in on the Config).
func (sys *System) SetGate(g Gate) { sys.gate = g }

// Clock returns the system's clock.
func (sys *System) Clock() Clock { return sys.clock }

// Params returns the sizing parameters (TR, CR, N, alpha).
func (sys *System) Params() core.Params { return sys.params }

// StaticSize returns the full-load buffer size BS(N).
func (sys *System) StaticSize() si.Bits { return sys.staticSize }

// Table returns the precomputed dynamic sizing table.
func (sys *System) Table() *core.Table { return sys.table }

// Disks reports the number of disks.
func (sys *System) Disks() int { return len(sys.disks) }

// Disk returns the i'th disk.
func (sys *System) Disk(i int) *Disk { return sys.disks[i] }

// OnArrival routes a request to the disk holding its title and runs the
// arrival protocol: record for prediction, reject at capacity or by the
// gate, else queue for admission and dispatch.
func (sys *System) OnArrival(req workload.Request) {
	sys.disks[req.Disk].onArrival(req)
}

// sizeFor returns the dynamic buffer size for a disk at load (n, k).
// The receiver disk is unused today (all disks share one table) but
// keeps the call sites ready for per-disk heterogeneity.
func (sys *System) sizeFor(_ *Disk, n, k int) si.Bits { return sys.table.Size(n, k) }

// naiveSizeFor evaluates the naive scheme's Eq. 5 at n+k with the
// method's current-load disk latency, memoized per (n, k) on first use.
// The lazy build is safe under the clock's serialization contract: every
// call into the system runs one callback at a time.
func (sys *System) naiveSizeFor(n, k int) si.Bits {
	if sys.naiveTab == nil {
		sys.naiveTab = core.NewTableWith(sys.params, sys.cfg.Method.DLModel(sys.cfg.Spec), core.Params.NaiveSize)
	}
	return sys.naiveTab.Size(n, k)
}

// dybaseSizeFor evaluates the DYBASE recurrence at (n, k) with the
// method's current-load disk latency. The recurrence chain is walked
// once per (n, k) — the table memoizes it, as §3.3 prescribes for the
// dynamic scheme — instead of on every fill.
func (sys *System) dybaseSizeFor(n, k int) si.Bits {
	if sys.dybaseTab == nil {
		sys.dybaseTab = core.NewTableWith(sys.params, sys.cfg.Method.DLModel(sys.cfg.Spec), core.Params.DybaseSize)
	}
	return sys.dybaseTab.Size(n, k)
}
