package engine

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/si"
)

// refIndex is the obvious reference implementation the heap must agree
// with: a slice re-sorted after every mutation.
type refIndex []*Stream

func (r refIndex) min() *Stream {
	if len(r) == 0 {
		return nil
	}
	best := r[0]
	for _, st := range r[1:] {
		if dlBefore(st, best) {
			best = st
		}
	}
	return best
}

// TestDeadlineHeapMatchesReference drives the heap through a long random
// insert/remove/re-file trace and checks, after every operation, the heap
// invariant, the population, and agreement with the reference on the
// minimum — the value every scheduling decision reads.
func TestDeadlineHeapMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	h := newDeadlineIndex()
	var ref refIndex
	var nextID int
	var seq int64
	for op := 0; op < 5000; op++ {
		switch {
		case len(ref) == 0 || rng.Intn(3) > 0 && len(ref) < 300:
			seq++
			st := &Stream{
				id:       nextID,
				admitSeq: seq,
				// Few distinct deadlines so ties are common and the
				// admitSeq tie-break is actually exercised.
				dlKey: si.Seconds(rng.Intn(16)),
				dlPos: -1,
			}
			nextID++
			h.insert(st)
			ref = append(ref, st)
		default:
			i := rng.Intn(len(ref))
			st := ref[i]
			h.remove(st)
			ref[i] = ref[len(ref)-1]
			ref = ref[:len(ref)-1]
			if st.dlPos != -1 {
				t.Fatalf("op %d: removed stream keeps dlPos %d", op, st.dlPos)
			}
			// Half the removals model a fill completion: the stream
			// comes back with a later deadline.
			if rng.Intn(2) == 0 {
				st.dlKey += si.Seconds(1 + rng.Intn(8))
				h.insert(st)
				ref = append(ref, st)
			}
		}
		if err := h.check(); err != nil {
			t.Fatalf("op %d: %v", op, err)
		}
		if h.size() != len(ref) {
			t.Fatalf("op %d: size %d, reference %d", op, h.size(), len(ref))
		}
		if got, want := h.min(), ref.min(); got != want {
			t.Fatalf("op %d: min = %v, reference %v", op, got, want)
		}
	}
}

// Equal deadlines must resolve by admission order — the BubbleUp scan's
// tie-break the sorted slice used to give for free.
func TestDeadlineHeapTieBreakByAdmitSeq(t *testing.T) {
	h := newDeadlineIndex()
	streams := make([]*Stream, 20)
	for i := range streams {
		streams[i] = &Stream{id: i, admitSeq: int64(i), dlKey: 5, dlPos: -1}
	}
	// Insert in a scrambled order; the minimum must still walk out in
	// admission order as we drain.
	for _, i := range rand.New(rand.NewSource(2)).Perm(len(streams)) {
		h.insert(streams[i])
	}
	for want := 0; want < len(streams); want++ {
		st := h.min()
		if st.admitSeq != int64(want) {
			t.Fatalf("drain %d: min admitSeq %d", want, st.admitSeq)
		}
		h.remove(st)
	}
}

func TestDeadlineHeapAppendAscending(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	h := newDeadlineIndex()
	var want []si.Seconds
	for i := 0; i < 200; i++ {
		dl := si.Seconds(rng.Intn(50))
		h.insert(&Stream{id: i, admitSeq: int64(i), dlKey: dl, dlPos: -1})
		want = append(want, dl)
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	scratch := make([]si.Seconds, 0, 256)
	scratch = append(scratch, -1) // pre-existing content must survive
	got := h.appendAscending(scratch)
	if got[0] != -1 {
		t.Fatal("appendAscending clobbered existing scratch content")
	}
	if len(got)-1 != len(want) {
		t.Fatalf("appended %d values, want %d", len(got)-1, len(want))
	}
	for i, dl := range got[1:] {
		if dl != want[i] {
			t.Fatalf("ascending[%d] = %v, want %v", i, dl, want[i])
		}
	}
}

func TestDeadlineHeapRemoveOutOfSyncPanics(t *testing.T) {
	h := newDeadlineIndex()
	st := &Stream{dlPos: -1}
	h.insert(st)
	stray := &Stream{dlPos: 0} // claims the root position it does not hold
	defer func() {
		if recover() == nil {
			t.Error("removing a stream the index never held did not panic")
		}
	}()
	h.remove(stray)
}

// The fill-completion operation pair — remove the served stream, re-file
// it at its next deadline — must not allocate once the backing array has
// grown to the population: that is the per-service cost at 700 streams
// per disk in the scale scenario.
func TestDeadlineHeapSteadyStateAllocFree(t *testing.T) {
	const n = 1024
	checksum := DeadlineIndexChurn(n, n) // warm equivalent, validates the hook
	if checksum < 0 {
		t.Fatal("churn hook rejected its input")
	}
	h := newDeadlineIndex()
	streams := make([]*Stream, n)
	dl := si.Seconds(0)
	for i := range streams {
		dl += si.Seconds(i%5) / 8
		streams[i] = &Stream{id: i, admitSeq: int64(i), dlKey: dl, dlPos: -1}
		h.insert(streams[i])
	}
	seq := int64(n)
	allocs := testing.AllocsPerRun(2000, func() {
		st := h.min()
		h.remove(st)
		dl += 0.125
		seq++
		st.dlKey, st.admitSeq = dl, seq
		h.insert(st)
	})
	if allocs != 0 {
		t.Errorf("steady-state remove+insert allocates %.1f objects/op, want 0", allocs)
	}
}
