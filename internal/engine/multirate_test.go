package engine

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/diskmodel"
	"repro/internal/sched"
	"repro/internal/si"
	"repro/internal/workload"
)

// multiRateDisk builds a system on a three-rung ladder and fills its one
// disk with streams at every rung, leaving it mid-day with a mixed-rate
// in-service population.
func multiRateDisk(t *testing.T) *Disk {
	t.Helper()
	ladder := []si.BitRate{si.Mbps(1.5), si.Mbps(1.0), si.Mbps(0.5)}
	lib, err := catalog.New(catalog.Config{
		Titles: 6, Disks: 1, Spec: diskmodel.Barracuda9LP(), PopularityTheta: 0.271,
		Video: func(id int) catalog.Video {
			v := catalog.MPEG1Video(id)
			v.Ladder = ladder
			return v
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(Config{
		Clock:     NewVirtualClock(),
		Allocator: DynamicAllocator{},
		Method:    sched.NewMethod(sched.RoundRobin),
		Spec:      diskmodel.Barracuda9LP(),
		CR:        ladder[0],
		Rates:     ladder,
		Alpha:     1,
		TLog:      si.Minutes(40),
		Library:   lib,
	})
	if err != nil {
		t.Fatal(err)
	}
	vc := sys.Clock().(*VirtualClock)
	for i := 0; i < 24; i++ {
		vc.Run(si.Seconds(i * 2))
		sys.OnArrival(workload.Request{
			ID: i, Arrival: si.Seconds(i * 2), Video: i % 6, Disk: 0,
			Viewing: si.Minutes(30), Rate: ladder[i%len(ladder)],
		})
	}
	vc.Run(si.Seconds(120))
	d := sys.Disk(0)
	if d.InService() < 12 {
		t.Fatalf("only %d streams in service, want a loaded mixed-rate disk", d.InService())
	}
	return d
}

// The rate-aware planning path runs on every fill of every stream: the
// per-scheme PlanSize bound over the rates actually in service must stay
// allocation-free at steady state, closures included.
func TestMultiRatePlanSizeAllocFree(t *testing.T) {
	d := multiRateDisk(t)
	n := d.InService()
	allocators := []Allocator{
		StaticAllocator{}, DynamicAllocator{}, NaiveAllocator{}, DybaseAllocator{},
	}
	for _, a := range allocators {
		a.PlanSize(d, n) // warm the lazily memoized per-rate tables
	}
	for _, a := range allocators {
		allocs := testing.AllocsPerRun(1000, func() {
			_ = a.PlanSize(d, n)
		})
		if allocs != 0 {
			t.Errorf("%T.PlanSize allocates %v objects/op on the multi-rate path, want 0", a, allocs)
		}
	}
}

// The multi-rate admission test — count cap, bandwidth cap, ladder
// walk — also runs per arrival and must not allocate.
func TestMultiRateFitsRateAllocFree(t *testing.T) {
	d := multiRateDisk(t)
	rates := []si.BitRate{si.Mbps(1.5), si.Mbps(1.0), si.Mbps(0.5)}
	allocs := testing.AllocsPerRun(1000, func() {
		for _, r := range rates {
			_ = d.fitsRate(r)
		}
	})
	if allocs != 0 {
		t.Errorf("fitsRate allocates %v objects/op, want 0", allocs)
	}
}
