package engine

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/diskmodel"
	"repro/internal/sched"
	"repro/internal/si"
)

// harness builds a disk wired into a tiny system without running the
// clock, so scheduler mechanics can be driven by hand.
func harness(t *testing.T, kind sched.Kind, alloc Allocator) *Disk {
	t.Helper()
	lib, err := catalog.New(catalog.Config{
		Titles: 6, Disks: 1, Spec: diskmodel.Barracuda9LP(), PopularityTheta: 0.271,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(Config{
		Clock:     NewVirtualClock(),
		Allocator: alloc,
		Method:    sched.NewMethod(kind),
		Spec:      diskmodel.Barracuda9LP(),
		CR:        si.Mbps(1.5),
		Alpha:     1,
		TLog:      si.Minutes(40),
		Library:   lib,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys.Disk(0)
}

// addStream admits a synthetic stream directly, maintaining the same
// per-disk indexes (slot, fresh FIFO) real admission would.
func addStream(t *testing.T, d *Disk, id int, viewing si.Seconds) *Stream {
	t.Helper()
	d.admitSeq++
	st := &Stream{
		disk:     d,
		id:       id,
		place:    d.sys.cfg.Library.Placement(id % d.sys.cfg.Library.Len()),
		required: d.sys.cfg.CR.DataIn(viewing),
		deadline: d.now(),
		slot:     len(d.streams),
		admitSeq: d.admitSeq,
		active:   true,
	}
	d.streams = append(d.streams, st)
	d.fresh = append(d.fresh, st)
	d.pool.Attach(st.id, d.sys.cfg.CR, d.now())
	d.sched.Admit(st)
	return st
}

// markStarted flips a synthetic stream to started with the given cached
// deadline and re-indexes it, as completeService would.
func markStarted(d *Disk, st *Stream, deadline si.Seconds) {
	st.started = true
	st.deadline = deadline
	d.dlFix(st)
}

func TestRRSchedulerPrefersFreshWhenIdle(t *testing.T) {
	d := harness(t, sched.RoundRobin, DynamicAllocator{})
	old := addStream(t, d, 1, si.Minutes(30))
	// Give the old stream a comfortable buffer.
	d.pool.BeginFill(old.id, si.Megabits(15), 0)
	d.pool.CompleteFill(old.id, 0)
	markStarted(d, old, d.pool.EmptyAt(old.id))
	fresh := addStream(t, d, 2, si.Minutes(30))
	st, start := d.sched.Next(0)
	if st != fresh {
		t.Fatalf("Next = stream %d, want the fresh stream", st.id)
	}
	if start != 0 {
		t.Errorf("fresh service should start now, got %v", start)
	}
}

func TestRRSchedulerUrgentRefillBeatsFresh(t *testing.T) {
	d := harness(t, sched.RoundRobin, DynamicAllocator{})
	old := addStream(t, d, 1, si.Minutes(30))
	// A nearly empty buffer: due within the cushion window.
	d.pool.BeginFill(old.id, si.Megabits(0.075), 0) // 0.05 s of content
	d.pool.CompleteFill(old.id, 0)
	markStarted(d, old, d.pool.EmptyAt(old.id))
	addStream(t, d, 2, si.Minutes(30))
	st, _ := d.sched.Next(0)
	if st != old {
		t.Fatalf("Next = stream %d, want the starving started stream", st.id)
	}
}

func TestRRSchedulerLazyWakeTime(t *testing.T) {
	d := harness(t, sched.RoundRobin, StaticAllocator{})
	st := addStream(t, d, 1, si.Minutes(60))
	d.pool.BeginFill(st.id, d.sys.staticSize, 0)
	d.pool.CompleteFill(st.id, 0)
	markStarted(d, st, d.pool.EmptyAt(st.id))
	next, start := d.sched.Next(0)
	if next != st {
		t.Fatal("want the lone stream")
	}
	if start <= 0 {
		t.Fatalf("lone full buffer should be scheduled lazily, got start %v", start)
	}
	if start >= st.deadline {
		t.Fatalf("start %v must precede the deadline %v", start, st.deadline)
	}
}

func TestSweepSchedulerFormsCylinderOrder(t *testing.T) {
	d := harness(t, sched.Sweep, StaticAllocator{})
	// Three streams at different disk positions: stream ids map to titles
	// placed contiguously, so higher id = higher cylinder.
	c := addStream(t, d, 2, si.Minutes(60))
	a := addStream(t, d, 0, si.Minutes(60))
	b := addStream(t, d, 1, si.Minutes(60))
	first, start := d.sched.Next(0)
	if first != a {
		t.Fatalf("first serviced = stream %d, want lowest cylinder (0)", first.id)
	}
	if start != 0 {
		t.Errorf("fresh members should start the period now, got %v", start)
	}
	sp := d.sched.(*sweepScheduler)
	order := []int{sp.period[0].id, sp.period[1].id, sp.period[2].id}
	if order[0] != a.id || order[1] != b.id || order[2] != c.id {
		t.Errorf("period order = %v, want [0 1 2]", order)
	}
}

func TestSweepSchedulerAdmissionOnlyBetweenPeriods(t *testing.T) {
	d := harness(t, sched.Sweep, StaticAllocator{})
	addStream(t, d, 1, si.Minutes(60))
	if !d.sched.CanAdmit() {
		t.Fatal("no period formed yet: admission allowed")
	}
	st, _ := d.sched.Next(0) // forms the period
	if st == nil {
		t.Fatal("expected work")
	}
	if d.sched.CanAdmit() {
		t.Error("mid-period admission should be blocked")
	}
	d.sched.OnServiced(st)
	if !d.sched.CanAdmit() {
		t.Error("period exhausted: admission allowed again")
	}
}

func TestGSSSchedulerGroupAssignment(t *testing.T) {
	d := harness(t, sched.GSS, StaticAllocator{})
	var members []*Stream
	for i := 0; i < 10; i++ {
		members = append(members, addStream(t, d, i, si.Minutes(60)))
	}
	gp := d.sched.(*gssScheduler)
	if len(gp.groups) != 2 {
		t.Fatalf("10 streams with g=8: want 2 groups, got %d", len(gp.groups))
	}
	if len(gp.groups[0]) != 8 || len(gp.groups[1]) != 2 {
		t.Errorf("group sizes = %d, %d; want 8, 2", len(gp.groups[0]), len(gp.groups[1]))
	}
	// Departure shrinks a group; a singleton group vanishes with its
	// last member.
	d.removeStream(members[9])
	d.removeStream(members[8])
	if len(gp.groups) != 1 {
		t.Errorf("want 1 group after emptying the second, got %d", len(gp.groups))
	}
}

func TestGSSSchedulerSweepsWholeGroup(t *testing.T) {
	d := harness(t, sched.GSS, StaticAllocator{})
	for i := 0; i < 10; i++ {
		addStream(t, d, i, si.Minutes(60))
	}
	st, _ := d.sched.Next(0)
	if st == nil {
		t.Fatal("expected work")
	}
	gp := d.sched.(*gssScheduler)
	if len(gp.sweep) != 8 {
		t.Fatalf("sweep covers %d members, want the full group of 8", len(gp.sweep))
	}
	// Service the whole sweep; the rotation then reaches group 2.
	for i := 0; i < 8; i++ {
		st, _ := d.sched.Next(0)
		if st == nil {
			t.Fatal("sweep ended early")
		}
		st.delivered = st.required // mark done so Next() moves on
		d.sched.OnServiced(st)
	}
	st2, _ := d.sched.Next(0)
	if st2 == nil {
		t.Fatal("second group never serviced")
	}
	if len(gp.sweep) != 2 {
		t.Errorf("second sweep covers %d, want 2", len(gp.sweep))
	}
}

func TestSchedulerSkipsFinishedStreams(t *testing.T) {
	for _, kind := range sched.Kinds {
		d := harness(t, kind, StaticAllocator{})
		st := addStream(t, d, 1, si.Minutes(60))
		st.delivered = st.required
		if got, _ := d.sched.Next(0); got != nil {
			t.Errorf("%v: finished stream still scheduled", kind)
		}
	}
}

func TestRoomAtFloorsRefills(t *testing.T) {
	d := harness(t, sched.RoundRobin, DynamicAllocator{})
	st := addStream(t, d, 1, si.Minutes(60))
	// A full, freshly sized buffer must not be refilled immediately.
	st.size = si.Megabits(1.5) // 1 s of content
	d.pool.BeginFill(st.id, st.size, 0)
	d.pool.CompleteFill(st.id, 0)
	markStarted(d, st, d.pool.EmptyAt(st.id))
	if got := d.roomAt(st); got <= 0 {
		t.Errorf("roomAt = %v, want a positive wait for a full buffer", got)
	}
	if got := d.roomAt(st); got >= st.deadline {
		t.Errorf("roomAt %v must precede the deadline %v", got, st.deadline)
	}
	// Fresh streams have no floor.
	fresh := addStream(t, d, 2, si.Minutes(60))
	if got := d.roomAt(fresh); got != 0 {
		t.Errorf("fresh roomAt = %v, want 0", got)
	}
}
