package engine

// fifo is a growable ring buffer: push at the tail, pop from the head,
// indexed access from the head for binary searches. Unlike an appended
// slice trimmed with compactTail, the backing array is reused in place —
// a steady-state producer/consumer pair allocates nothing, which is what
// interns the per-fill bookkeeping records (the estimate log and its
// arrival window) that used to dominate a simulated day's heap churn.
//
// Capacity is always a power of two so the index wrap is a mask. A large
// buffer drained far below its high-water mark is reallocated tight, so
// a burst does not pin its peak memory for the rest of an arbitrarily
// long run — mirroring compactTail's shrink policy, but with factor-8
// hysteresis so the shrink itself cannot thrash.
type fifo[T any] struct {
	buf  []T // power-of-two length, nil until first push
	head int // index of the oldest element
	n    int // elements queued
}

// fifoShrinkCap is the capacity above which a mostly-empty fifo is
// reallocated tight. It must sit far above the logs' steady-state
// occupancy: the estimate log saw-tooths between empty and a few
// thousand entries every usage period (the windows recorded during one
// service round all close together), and a threshold inside that
// oscillation would reallocate the ring a thousand times a day — the
// very churn the fifo exists to intern. At 64 Ki entries the threshold
// only matters for genuinely pathological bursts (>1.5 MB of
// bookkeeping on one disk), which are released rather than pinned.
const fifoShrinkCap = 1 << 16

// len reports the number of queued elements.
func (f *fifo[T]) len() int { return f.n }

// push appends v at the tail, growing the ring when full.
func (f *fifo[T]) push(v T) {
	if f.n == len(f.buf) {
		f.resize(max(2*len(f.buf), 8))
	}
	f.buf[(f.head+f.n)&(len(f.buf)-1)] = v
	f.n++
}

// front returns the oldest element; the fifo must not be empty.
func (f *fifo[T]) front() *T { return &f.buf[f.head] }

// at returns the i'th element from the head (0 = oldest); i must be in
// [0, len).
func (f *fifo[T]) at(i int) *T { return &f.buf[(f.head+i)&(len(f.buf)-1)] }

// popFront drops the oldest element.
func (f *fifo[T]) popFront() { f.popN(1) }

// popN drops the cut oldest elements and shrinks a drained-out ring.
func (f *fifo[T]) popN(cut int) {
	var zero T
	for i := 0; i < cut; i++ {
		f.buf[(f.head+i)&(len(f.buf)-1)] = zero // release referenced memory
	}
	f.head = (f.head + cut) & (len(f.buf) - 1)
	f.n -= cut
	if len(f.buf) > fifoShrinkCap && f.n*8 <= len(f.buf) {
		f.resize(max(2*f.n, 8))
	}
}

// resize moves the queued elements into a fresh ring of the given
// power-of-two-rounded capacity.
func (f *fifo[T]) resize(capacity int) {
	size := 8
	for size < capacity {
		size *= 2
	}
	out := make([]T, size)
	for i := 0; i < f.n; i++ {
		out[i] = f.buf[(f.head+i)&(len(f.buf)-1)]
	}
	f.buf, f.head = out, 0
}
