package engine

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/diskmodel"
	"repro/internal/sched"
	"repro/internal/si"
	"repro/internal/workload"
)

// admitAuditor checks, synchronously at every rejection, that the engine
// only turns an arrival away when no rung of its title's ladder fits —
// i.e. a rejection under downgrading admission really means the disk was
// saturated for every rate the sizing tables could back.
type admitAuditor struct {
	NopObserver
	t     *testing.T
	sys   *System
	lib   *catalog.Library
	bwCap si.BitRate
}

func (a *admitAuditor) OnReject(disk int, req workload.Request, reason RejectReason, now si.Seconds) {
	if reason != RejectCapacity {
		return
	}
	d := a.sys.Disk(disk)
	if d.Committed() >= a.sys.AdmitCap() {
		return // the count capacity alone justifies the rejection
	}
	want := req.Rate
	if want <= 0 {
		want = a.sys.cfg.CR
	}
	for _, rung := range a.lib.Video(req.Video).Rungs() {
		if rung > want {
			continue // downgrading never steps a viewer up
		}
		if a.sys.multi != nil && a.sys.ctxFor(rung) == nil {
			continue // no sizing tables for this rung
		}
		if !a.sys.cfg.Downgrade && rung != want {
			continue // reject-only: exactly the requested rung counts
		}
		if d.CommittedRate()+rung < a.bwCap {
			a.t.Errorf("rejected request %d (rate %v) at t=%v, but rung %v fits: %d/%d committed, %v+%v < %v",
				req.ID, req.Rate, now, rung, d.Committed(), a.sys.AdmitCap(), d.CommittedRate(), rung, a.bwCap)
		}
	}
}

// FuzzLadderAdmit model-checks multi-rate admission under arbitrary
// ladder shapes, admission policies, and arrival sequences: whatever
// rungs the fuzzer invents, the engine never admits a committed set its
// sizing tables cannot back — the committed count stays within
// AdmitCap, the committed consumption bandwidth stays strictly below
// the bandwidth cap (knee-halved when the knee scheme is on), a
// rejection only happens when no ladder rung fits, and once every
// viewer departs the committed bandwidth returns exactly to zero.
func FuzzLadderAdmit(f *testing.F) {
	f.Add(uint8(2), false, false, []byte{10, 40, 81, 80, 202, 120})
	f.Add(uint8(3), true, true, []byte{5, 200, 99, 10, 3, 255, 77, 31, 150, 64})
	f.Add(uint8(1), false, true, []byte{255, 255, 0, 0, 128, 17})
	f.Add(uint8(4), true, false, []byte{})
	f.Fuzz(func(t *testing.T, rungsRaw uint8, knee, downgrade bool, data []byte) {
		spec := diskmodel.Barracuda9LP()
		// Ladder shape from the fuzz input: 1-4 strictly descending rungs
		// topped by the MPEG-1 rate, the lower rungs picked by the leading
		// data bytes (floored at 0.4 Mbps to keep the derived N — and so
		// the sizing-table builds — bounded).
		nRungs := int(rungsRaw)%4 + 1
		ladder := []si.BitRate{si.Mbps(1.5)}
		for i := 1; i < nRungs && len(data) > 0; i++ {
			b := data[0]
			data = data[1:]
			r := si.Mbps(0.4 + 0.05*float64(b%22))
			dup := false
			for _, e := range ladder {
				dup = dup || e == r
			}
			if !dup && r < ladder[0] {
				ladder = append(ladder, r)
			}
		}
		for i := 1; i < len(ladder); i++ { // insertion sort, descending
			for j := i; j > 0 && ladder[j] > ladder[j-1]; j-- {
				ladder[j], ladder[j-1] = ladder[j-1], ladder[j]
			}
		}

		const titles = 4
		lib, err := catalog.New(catalog.Config{
			Titles: titles, Disks: 1, Spec: spec, PopularityTheta: 0.271,
			Video: func(id int) catalog.Video {
				v := catalog.MPEG1Video(id)
				v.Ladder = ladder
				return v
			},
		})
		if err != nil {
			t.Skip("ladder rejected by the catalog")
		}
		var alloc Allocator = DynamicAllocator{}
		bwCap := spec.TransferRate
		if knee {
			alloc = KneeAllocator{}
			bwCap = KneeAllocator{}.AdmitCapBandwidth(spec.TransferRate)
		}
		sys, err := New(Config{
			Clock:     NewVirtualClock(),
			Allocator: alloc,
			Method:    sched.NewMethod(sched.RoundRobin),
			Spec:      spec,
			CR:        ladder[0],
			Rates:     ladder,
			Downgrade: downgrade,
			Alpha:     1,
			TLog:      si.Minutes(40),
			Library:   lib,
		})
		if err != nil {
			t.Skip("ladder rejected by the engine")
		}
		sys.AttachObserver(&admitAuditor{t: t, sys: sys, lib: lib, bwCap: bwCap})
		vc := sys.Clock().(*VirtualClock)
		d := sys.Disk(0)

		var now si.Seconds
		for i := 0; i+1 < len(data); i += 2 {
			b1, b2 := data[i], data[i+1]
			now += si.Seconds(b1 % 7)
			vc.Run(now)
			req := workload.Request{
				ID:      i / 2,
				Arrival: now,
				Video:   int(b1) % titles,
				Disk:    0,
				Viewing: si.Seconds(10 + int(b2)),
			}
			if b1%16 != 15 { // leave some requests on the legacy Rate==0 path
				req.Rate = ladder[int(b1/4)%len(ladder)]
			}
			sys.OnArrival(req)
			if c := d.Committed(); c > sys.AdmitCap() {
				t.Fatalf("after arrival %d: %d committed, cap %d", req.ID, c, sys.AdmitCap())
			}
			if r := d.CommittedRate(); r >= bwCap {
				t.Fatalf("after arrival %d: committed bandwidth %v at or above the cap %v", req.ID, r, bwCap)
			}
		}

		// Every viewing time is under 266s; an hour drains the disk, the
		// deferral queue included. The books must balance back to zero.
		vc.Run(now + si.Seconds(3600))
		if d.InService() != 0 || d.QueueLen() != 0 {
			t.Fatalf("disk not drained: %d in service, %d queued", d.InService(), d.QueueLen())
		}
		if r := d.CommittedRate(); r != 0 {
			t.Fatalf("all viewers departed but %v committed bandwidth remains booked", r)
		}
	})
}
