package engine

import (
	"fmt"
	"slices"

	"repro/internal/si"
)

// deadlineIndex orders a disk's started streams that still need service
// by ascending (deadline, admitSeq) — the Round-Robin/BubbleUp scan
// winner with its tie-breaks. Deadlines change once per fill completion,
// so insert/remove are the hot operations; min backs every scheduling
// decision; the ascending traversal feeds only the lazy-start
// computation at idle transitions.
//
// The index holds the deadline in each stream's dlKey (frozen at insert;
// dlFix re-files a stream whose deadline moved), and keeps the stream's
// position in dlPos so removal needs no search.
type deadlineIndex interface {
	// insert files st by its (dlKey, admitSeq). st must not be indexed.
	insert(st *Stream)
	// remove unfiles st. Panics if st's position is out of sync.
	remove(st *Stream)
	// min returns the indexed stream with the smallest (dlKey, admitSeq),
	// or nil when the index is empty.
	min() *Stream
	// size reports the number of indexed streams.
	size() int
	// appendAscending appends the indexed streams' deadline values to
	// scratch in ascending order and returns the grown slice. Equal
	// deadlines are interchangeable as values, so no admitSeq tie-break
	// is promised here — only min carries the full order.
	appendAscending(scratch []si.Seconds) []si.Seconds
	// check validates the internal structure (tests only).
	check() error
}

// dlBefore is the index's strict total order.
func dlBefore(a, b *Stream) bool {
	return a.dlKey < b.dlKey || (a.dlKey == b.dlKey && a.admitSeq < b.admitSeq)
}

// deadlineHeap is a 4-ary min-heap deadlineIndex: O(log n) insert and
// remove with zero steady-state allocation (the backing array is reused,
// positions live in the streams). 4-ary rather than binary because the
// heap holds pointers: a quarter of the depth means a quarter of the
// cache misses on the sift path, and the 4-child min scan stays in one
// cache line.
type deadlineHeap struct {
	items []*Stream
}

const dlArity = 4

func newDeadlineIndex() deadlineIndex { return &deadlineHeap{} }

func (h *deadlineHeap) size() int { return len(h.items) }

func (h *deadlineHeap) min() *Stream {
	if len(h.items) == 0 {
		return nil
	}
	return h.items[0]
}

func (h *deadlineHeap) insert(st *Stream) {
	st.dlPos = len(h.items)
	h.items = append(h.items, st)
	h.siftUp(st.dlPos)
}

func (h *deadlineHeap) remove(st *Stream) {
	pos, last := st.dlPos, len(h.items)-1
	if pos < 0 || pos > last || h.items[pos] != st {
		panic("engine: deadline index out of sync")
	}
	moved := h.items[last]
	h.items[last] = nil
	h.items = h.items[:last]
	st.dlPos = -1
	if pos == last {
		return
	}
	h.items[pos] = moved
	moved.dlPos = pos
	if !h.siftDown(pos) {
		h.siftUp(pos)
	}
}

func (h *deadlineHeap) siftUp(pos int) {
	it := h.items
	st := it[pos]
	for pos > 0 {
		parent := (pos - 1) / dlArity
		p := it[parent]
		if !dlBefore(st, p) {
			break
		}
		it[pos] = p
		p.dlPos = pos
		pos = parent
	}
	it[pos] = st
	st.dlPos = pos
}

// siftDown restores the heap below pos, reporting whether anything moved.
func (h *deadlineHeap) siftDown(pos int) bool {
	it := h.items
	st := it[pos]
	start := pos
	n := len(it)
	for {
		first := pos*dlArity + 1
		if first >= n {
			break
		}
		best := first
		end := first + dlArity
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if dlBefore(it[c], it[best]) {
				best = c
			}
		}
		if !dlBefore(it[best], st) {
			break
		}
		it[pos] = it[best]
		it[pos].dlPos = pos
		pos = best
	}
	it[pos] = st
	st.dlPos = pos
	return pos != start
}

func (h *deadlineHeap) appendAscending(scratch []si.Seconds) []si.Seconds {
	base := len(scratch)
	for _, st := range h.items {
		scratch = append(scratch, st.dlKey)
	}
	slices.Sort(scratch[base:])
	return scratch
}

// DeadlineIndexChurn exercises the deadline index with its hot-path
// operation mix at a fixed population: fill the index to n streams, then
// rounds times remove the earliest stream and re-file it behind the rest
// — each fill completion's remove+insert pair. It returns the final
// minimum's admission sequence as a checksum. The function exists for
// the tracked benchmark cases (internal/bench): after the first round
// the backing array stops growing, so cmd/bench's allocs/op gate pins
// the steady-state index path to zero allocations.
func DeadlineIndexChurn(n, rounds int) int64 {
	if n <= 0 {
		return -1
	}
	idx := newDeadlineIndex()
	streams := make([]*Stream, n)
	deadline := si.Seconds(0)
	for i := range streams {
		deadline += si.Seconds(1+i%7) / 16
		streams[i] = &Stream{id: i, admitSeq: int64(i), dlKey: deadline, dlPos: -1}
		idx.insert(streams[i])
	}
	seq := int64(n)
	for r := 0; r < rounds; r++ {
		st := idx.min()
		idx.remove(st)
		deadline += si.Seconds(1+r%7) / 16
		seq++
		st.dlKey, st.admitSeq = deadline, seq
		idx.insert(st)
	}
	return idx.min().admitSeq
}

func (h *deadlineHeap) check() error {
	for i, st := range h.items {
		if st.dlPos != i {
			return fmt.Errorf("stream %d dlPos %d at heap index %d", st.id, st.dlPos, i)
		}
		if i > 0 {
			parent := (i - 1) / dlArity
			if dlBefore(st, h.items[parent]) {
				return fmt.Errorf("heap order violated at index %d (parent %d)", i, parent)
			}
		}
	}
	return nil
}
