package workload

import (
	"math"
	"strings"
	"testing"

	"repro/internal/si"
)

func TestTraceCSVRoundTrip(t *testing.T) {
	lib := testLibrary(t, 2)
	orig := Generate(ZipfDay(200, 0.5, si.Hours(2), si.Hours(4)), lib, 5)

	var buf strings.Builder
	if err := orig.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Requests) != len(orig.Requests) {
		t.Fatalf("round trip lost requests: %d vs %d", len(back.Requests), len(orig.Requests))
	}
	for i := range orig.Requests {
		if back.Requests[i] != orig.Requests[i] {
			t.Fatalf("request %d differs: %+v vs %+v", i, back.Requests[i], orig.Requests[i])
		}
	}
	// The reconstructed schedule spans the arrivals.
	lastArrival := orig.Requests[len(orig.Requests)-1].Arrival
	if back.Schedule.Horizon() < lastArrival {
		t.Errorf("reconstructed horizon %v below last arrival %v", back.Schedule.Horizon(), lastArrival)
	}
}

func TestTraceCSVEmpty(t *testing.T) {
	var buf strings.Builder
	if err := (Trace{}).WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Requests) != 0 {
		t.Errorf("empty trace round-tripped %d requests", len(back.Requests))
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []struct {
		name string
		data string
	}{
		{"no header", ""},
		{"bad header", "a,b,c,d,e,f\n"},
		{"bad id", "id,arrival_s,video,disk,viewing_s,vcr\nx,1,0,0,10,0\n"},
		{"negative arrival", "id,arrival_s,video,disk,viewing_s,vcr\n0,-1,0,0,10,0\n"},
		{"bad video", "id,arrival_s,video,disk,viewing_s,vcr\n0,1,-2,0,10,0\n"},
		{"bad disk", "id,arrival_s,video,disk,viewing_s,vcr\n0,1,0,x,10,0\n"},
		{"bad viewing", "id,arrival_s,video,disk,viewing_s,vcr\n0,1,0,0,-10,0\n"},
		{"bad vcr", "id,arrival_s,video,disk,viewing_s,vcr\n0,1,0,0,10,x\n"},
		{"out of order", "id,arrival_s,video,disk,viewing_s,vcr\n0,10,0,0,1,0\n1,5,0,0,1,0\n"},
		{"short row", "id,arrival_s,video,disk,viewing_s,vcr\n0,1\n"},
	}
	for _, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c.data)); err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
}

func TestSummarize(t *testing.T) {
	tr := Trace{
		Requests: []Request{
			{ID: 0, Arrival: si.Minutes(5), Disk: 0, Viewing: si.Minutes(10)},
			{ID: 1, Arrival: si.Minutes(10), Disk: 0, Viewing: si.Minutes(20)},
			{ID: 2, Arrival: si.Minutes(40), Disk: 1, Viewing: si.Minutes(30)},
			{ID: 3, Arrival: si.Minutes(50), Disk: 1, Viewing: si.Minutes(40)},
		},
		Schedule: NewSchedule(si.Minutes(30), []float64{1, 1}),
	}
	st := tr.Summarize(2)
	if st.Requests != 4 {
		t.Errorf("requests = %d", st.Requests)
	}
	if math.Abs(float64(st.MeanViewing)-float64(si.Minutes(25))) > 1e-9 {
		t.Errorf("mean viewing = %v, want 25 min", st.MeanViewing)
	}
	// Two arrivals in each 30-minute slot: peak rate = 2/1800.
	if math.Abs(st.PeakRate-2.0/1800) > 1e-12 {
		t.Errorf("peak rate = %v", st.PeakRate)
	}
	if math.Abs(st.PerDiskShare[0]-0.5) > 1e-12 || math.Abs(st.PerDiskShare[1]-0.5) > 1e-12 {
		t.Errorf("disk shares = %v", st.PerDiskShare)
	}
	// Empty trace.
	empty := Trace{Schedule: NewSchedule(si.Minutes(30), []float64{0})}.Summarize(1)
	if empty.Requests != 0 || empty.PeakRate != 0 {
		t.Errorf("empty summary = %+v", empty)
	}
}
