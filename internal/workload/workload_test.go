package workload

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/catalog"
	"repro/internal/diskmodel"
	"repro/internal/si"
)

func testLibrary(t *testing.T, disks int) *catalog.Library {
	t.Helper()
	lib, err := catalog.New(catalog.Config{
		Titles:          6 * disks,
		Disks:           disks,
		Spec:            diskmodel.Barracuda9LP(),
		PopularityTheta: 0.271,
	})
	if err != nil {
		t.Fatal(err)
	}
	return lib
}

func TestNewScheduleValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: want panic", name)
			}
		}()
		f()
	}
	mustPanic("zero slot", func() { NewSchedule(0, []float64{1}) })
	mustPanic("no rates", func() { NewSchedule(1, nil) })
	mustPanic("negative rate", func() { NewSchedule(1, []float64{-1}) })
	mustPanic("NaN rate", func() { NewSchedule(1, []float64{math.NaN()}) })
}

func TestScheduleRateLookup(t *testing.T) {
	s := NewSchedule(si.Minutes(30), []float64{1, 2, 3})
	tests := []struct {
		t    si.Seconds
		want float64
	}{
		{-1, 0},
		{0, 1},
		{si.Minutes(29.9), 1},
		{si.Minutes(30), 2},
		{si.Minutes(89), 3},
		{si.Minutes(90), 0}, // beyond horizon
	}
	for _, tt := range tests {
		if got := s.Rate(tt.t); got != tt.want {
			t.Errorf("Rate(%v) = %v, want %v", tt.t, got, tt.want)
		}
	}
	if got := s.Horizon(); got != si.Minutes(90) {
		t.Errorf("Horizon = %v, want 90 min", got)
	}
	if got := s.Total(); math.Abs(got-(1+2+3)*1800) > 1e-9 {
		t.Errorf("Total = %v", got)
	}
}

func TestZipfDayShape(t *testing.T) {
	day := si.Hours(24)
	peak := si.Hours(9)
	s := ZipfDay(1000, 0, peak, day)
	// 48 slots of 30 minutes.
	if got := s.Horizon(); got != day {
		t.Errorf("Horizon = %v, want 24h", got)
	}
	// The highest-rate slot must sit adjacent to the peak time (9h lies
	// exactly on a slot boundary, so either neighbour may win the tie).
	bestRate, bestCenter := 0.0, si.Seconds(0)
	for m := 0.0; m < 24*60; m += 30 {
		center := si.Minutes(m + 15)
		if r := s.Rate(center); r > bestRate {
			bestRate, bestCenter = r, center
		}
	}
	if d := math.Abs(float64(bestCenter - peak)); d > float64(si.Minutes(15))+1e-9 {
		t.Errorf("highest-rate slot centered at %v, want within 15 min of peak %v", bestCenter, peak)
	}
	// Total arrivals are conserved.
	if got := s.Total(); math.Abs(got-1000) > 1e-6 {
		t.Errorf("Total = %v, want 1000", got)
	}
	// theta = 1 is uniform: every slot has the same rate.
	u := ZipfDay(960, 1, peak, day)
	want := 960.0 / (24 * 3600)
	for m := 0.0; m < 24*60; m += 30 {
		if r := u.Rate(si.Minutes(m)); math.Abs(r-want) > 1e-12 {
			t.Errorf("uniform rate at %v = %v, want %v", m, r, want)
		}
	}
}

// theta = 0 concentrates a much larger share near the peak than theta = 1.
func TestZipfDaySkewOrdering(t *testing.T) {
	day, peak := si.Hours(24), si.Hours(9)
	skewed := ZipfDay(1000, 0, peak, day)
	uniform := ZipfDay(1000, 1, peak, day)
	if skewed.Rate(peak) < 5*uniform.Rate(peak) {
		t.Errorf("peak rates: skewed %v, uniform %v — want strong concentration",
			skewed.Rate(peak), uniform.Rate(peak))
	}
}

func TestZipfDayValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: want panic", name)
			}
		}()
		f()
	}
	mustPanic("negative total", func() { ZipfDay(-1, 0, 0, si.Hours(24)) })
	mustPanic("short horizon", func() { ZipfDay(1, 0, 0, si.Minutes(10)) })
}

func TestGenerateDeterminism(t *testing.T) {
	lib := testLibrary(t, 2)
	s := ZipfDay(500, 0.5, si.Hours(9), si.Hours(24))
	a := Generate(s, lib, 11)
	b := Generate(s, lib, 11)
	if len(a.Requests) != len(b.Requests) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Requests), len(b.Requests))
	}
	for i := range a.Requests {
		if a.Requests[i] != b.Requests[i] {
			t.Fatalf("request %d differs", i)
		}
	}
	c := Generate(s, lib, 12)
	if len(c.Requests) == len(a.Requests) {
		same := true
		for i := range c.Requests {
			if c.Requests[i] != a.Requests[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical traces")
		}
	}
}

func TestGenerateInvariants(t *testing.T) {
	lib := testLibrary(t, 3)
	s := ZipfDay(800, 0, si.Hours(9), si.Hours(24))
	tr := Generate(s, lib, 5)
	if len(tr.Requests) < 400 {
		t.Fatalf("suspiciously few requests: %d", len(tr.Requests))
	}
	prev := si.Seconds(-1)
	for _, r := range tr.Requests {
		if r.Arrival < prev {
			t.Fatal("arrivals out of order")
		}
		prev = r.Arrival
		if r.Arrival < 0 || r.Arrival > s.Horizon() {
			t.Fatalf("arrival %v outside horizon", r.Arrival)
		}
		if r.Video < 0 || r.Video >= lib.Len() {
			t.Fatalf("bad video %d", r.Video)
		}
		if r.Disk != lib.Placement(r.Video).Disk {
			t.Fatalf("request disk %d does not match placement", r.Disk)
		}
		if r.Viewing < 0 || r.Viewing > MaxViewing {
			t.Fatalf("viewing %v outside [0, 120min]", r.Viewing)
		}
	}
}

// Property: Poisson totals concentrate near the schedule's expectation
// (weak law: within 5 sigma for a few thousand arrivals).
func TestGeneratePoissonTotal(t *testing.T) {
	lib := testLibrary(t, 1)
	s := ZipfDay(2000, 1, si.Hours(9), si.Hours(24))
	f := func(seed int64) bool {
		n := float64(len(Generate(s, lib, seed).Requests))
		return math.Abs(n-2000) < 5*math.Sqrt(2000)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// The arrival counts must track the rate profile: with theta = 0 the
// peak-hour slot sees far more arrivals than an off-peak one.
func TestGenerateFollowsSchedule(t *testing.T) {
	lib := testLibrary(t, 1)
	s := ZipfDay(3000, 0, si.Hours(9), si.Hours(24))
	tr := Generate(s, lib, 21)
	count := func(lo, hi si.Seconds) int {
		c := 0
		for _, r := range tr.Requests {
			if r.Arrival >= lo && r.Arrival < hi {
				c++
			}
		}
		return c
	}
	peak := count(si.Hours(8.5), si.Hours(9.5))
	off := count(si.Hours(22), si.Hours(23))
	if peak < 5*off {
		t.Errorf("peak hour %d arrivals vs off-peak %d — want strong concentration", peak, off)
	}
}

func TestPerDisk(t *testing.T) {
	lib := testLibrary(t, 3)
	s := ZipfDay(600, 0.5, si.Hours(9), si.Hours(24))
	tr := Generate(s, lib, 9)
	split := tr.PerDisk(3)
	total := 0
	for d, reqs := range split {
		total += len(reqs)
		prev := si.Seconds(-1)
		for _, r := range reqs {
			if r.Disk != d {
				t.Fatalf("request %d on wrong disk", r.ID)
			}
			if r.Arrival < prev {
				t.Fatal("per-disk order broken")
			}
			prev = r.Arrival
		}
	}
	if total != len(tr.Requests) {
		t.Errorf("split lost requests: %d vs %d", total, len(tr.Requests))
	}
	// Popularity skew: disk 0 holds the most popular titles.
	if len(split[0]) <= len(split[2]) {
		t.Errorf("expected disk 0 (%d) busier than disk 2 (%d)", len(split[0]), len(split[2]))
	}
}

func TestPerDiskPanicsOnBadDisk(t *testing.T) {
	tr := Trace{Requests: []Request{{Disk: 5}}}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range disk should panic")
		}
	}()
	tr.PerDisk(2)
}

func TestGenerateVCRSplitsSessions(t *testing.T) {
	lib := testLibrary(t, 1)
	s := ZipfDay(200, 1, si.Hours(2), si.Hours(4))
	plain := Generate(s, lib, 3)
	vcr := GenerateVCR(s, lib, 3, VCROptions{ActionsPerHour: 6})

	// Same arrival process: VCR only splits sessions into more requests.
	if len(vcr.Requests) <= len(plain.Requests) {
		t.Fatalf("VCR trace has %d requests, plain %d — want more", len(vcr.Requests), len(plain.Requests))
	}
	var vcrCount int
	var totalViewing, plainViewing si.Seconds
	prev := si.Seconds(-1)
	for i, r := range vcr.Requests {
		if r.ID != i {
			t.Fatalf("ids not renumbered: %d at %d", r.ID, i)
		}
		if r.Arrival < prev {
			t.Fatal("arrivals out of order")
		}
		prev = r.Arrival
		if r.VCR {
			vcrCount++
		}
		totalViewing += r.Viewing
	}
	for _, r := range plain.Requests {
		plainViewing += r.Viewing
	}
	if vcrCount == 0 {
		t.Fatal("no VCR continuations generated")
	}
	// Splitting conserves total viewing time.
	if math.Abs(float64(totalViewing-plainViewing)) > 1e-6*float64(plainViewing) {
		t.Errorf("viewing not conserved: %v vs %v", totalViewing, plainViewing)
	}
	// Cold (non-VCR) request count matches the plain trace's sessions.
	if cold := len(vcr.Requests) - vcrCount; cold != len(plain.Requests) {
		t.Errorf("cold requests = %d, want %d sessions", cold, len(plain.Requests))
	}
}

func TestGenerateVCRZeroRateIsGenerate(t *testing.T) {
	lib := testLibrary(t, 1)
	s := ZipfDay(100, 0.5, si.Hours(1), si.Hours(2))
	a := Generate(s, lib, 9)
	b := GenerateVCR(s, lib, 9, VCROptions{})
	if len(a.Requests) != len(b.Requests) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Requests), len(b.Requests))
	}
	for i := range a.Requests {
		if a.Requests[i] != b.Requests[i] {
			t.Fatalf("request %d differs", i)
		}
	}
}

func TestGenerateVCRNegativeRatePanics(t *testing.T) {
	lib := testLibrary(t, 1)
	defer func() {
		if recover() == nil {
			t.Error("negative VCR rate should panic")
		}
	}()
	GenerateVCR(ZipfDay(10, 1, si.Hours(1), si.Hours(2)), lib, 1, VCROptions{ActionsPerHour: -1})
}
