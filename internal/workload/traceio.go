package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/si"
)

// Trace serialization: a simple CSV format so generated workloads can be
// saved, inspected with ordinary tools, edited by hand, and replayed
// exactly. Columns: id, arrival_s, video, disk, viewing_s. The header row
// is required.

var traceHeader = []string{"id", "arrival_s", "video", "disk", "viewing_s", "vcr"}

// WriteCSV writes the trace's requests as CSV.
func (tr Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(traceHeader); err != nil {
		return fmt.Errorf("workload: writing header: %w", err)
	}
	for _, r := range tr.Requests {
		vcr := "0"
		if r.VCR {
			vcr = "1"
		}
		rec := []string{
			strconv.Itoa(r.ID),
			strconv.FormatFloat(float64(r.Arrival), 'g', -1, 64),
			strconv.Itoa(r.Video),
			strconv.Itoa(r.Disk),
			strconv.FormatFloat(float64(r.Viewing), 'g', -1, 64),
			vcr,
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("workload: writing request %d: %w", r.ID, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses requests written by WriteCSV. The schedule is not part
// of the serialization; ReadCSV reconstructs a flat schedule spanning the
// arrivals so Horizon-based consumers keep working.
func ReadCSV(r io.Reader) (Trace, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(traceHeader)
	head, err := cr.Read()
	if err != nil {
		return Trace{}, fmt.Errorf("workload: reading header: %w", err)
	}
	for i, h := range traceHeader {
		if head[i] != h {
			return Trace{}, fmt.Errorf("workload: header column %d is %q, want %q", i, head[i], h)
		}
	}
	var reqs []Request
	last := si.Seconds(-1)
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return Trace{}, fmt.Errorf("workload: line %d: %w", line, err)
		}
		req, err := parseRequest(rec)
		if err != nil {
			return Trace{}, fmt.Errorf("workload: line %d: %w", line, err)
		}
		if req.Arrival < last {
			return Trace{}, fmt.Errorf("workload: line %d: arrivals out of order", line)
		}
		last = req.Arrival
		reqs = append(reqs, req)
	}
	horizon := si.Minutes(30)
	if n := len(reqs); n > 0 {
		for horizon < reqs[n-1].Arrival {
			horizon += si.Minutes(30)
		}
	}
	rate := float64(len(reqs)) / float64(horizon)
	slots := int(horizon / si.Minutes(30))
	rates := make([]float64, slots)
	for i := range rates {
		rates[i] = rate
	}
	return Trace{Requests: reqs, Schedule: NewSchedule(si.Minutes(30), rates)}, nil
}

func parseRequest(rec []string) (Request, error) {
	id, err := strconv.Atoi(rec[0])
	if err != nil {
		return Request{}, fmt.Errorf("bad id %q", rec[0])
	}
	arrival, err := strconv.ParseFloat(rec[1], 64)
	if err != nil || arrival < 0 {
		return Request{}, fmt.Errorf("bad arrival %q", rec[1])
	}
	video, err := strconv.Atoi(rec[2])
	if err != nil || video < 0 {
		return Request{}, fmt.Errorf("bad video %q", rec[2])
	}
	disk, err := strconv.Atoi(rec[3])
	if err != nil || disk < 0 {
		return Request{}, fmt.Errorf("bad disk %q", rec[3])
	}
	viewing, err := strconv.ParseFloat(rec[4], 64)
	if err != nil || viewing < 0 {
		return Request{}, fmt.Errorf("bad viewing %q", rec[4])
	}
	var vcr bool
	switch rec[5] {
	case "0":
	case "1":
		vcr = true
	default:
		return Request{}, fmt.Errorf("bad vcr flag %q", rec[5])
	}
	return Request{
		ID:      id,
		Arrival: si.Seconds(arrival),
		Video:   video,
		Disk:    disk,
		Viewing: si.Seconds(viewing),
		VCR:     vcr,
	}, nil
}

// Stats summarizes a trace for inspection.
type Stats struct {
	Requests     int
	Horizon      si.Seconds
	PeakRate     float64 // arrivals per second in the busiest 30-minute slot
	MeanViewing  si.Seconds
	PerDiskShare []float64
}

// Summarize computes trace statistics over the given disk count.
func (tr Trace) Summarize(disks int) Stats {
	st := Stats{Requests: len(tr.Requests), Horizon: tr.Schedule.Horizon()}
	if disks > 0 {
		st.PerDiskShare = make([]float64, disks)
	}
	if len(tr.Requests) == 0 {
		return st
	}
	slot := si.Minutes(30)
	counts := map[int]int{}
	var viewing si.Seconds
	for _, r := range tr.Requests {
		counts[int(r.Arrival/slot)]++
		viewing += r.Viewing
		if r.Disk >= 0 && r.Disk < disks {
			st.PerDiskShare[r.Disk]++
		}
	}
	peak := 0
	for _, c := range counts {
		if c > peak {
			peak = c
		}
	}
	st.PeakRate = float64(peak) / float64(slot)
	st.MeanViewing = viewing / si.Seconds(len(tr.Requests))
	for i := range st.PerDiskShare {
		st.PerDiskShare[i] /= float64(len(tr.Requests))
	}
	return st
}
