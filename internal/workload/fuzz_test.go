package workload

import (
	"strings"
	"testing"
)

// FuzzReadCSV feeds arbitrary bytes through the trace parser: it must
// never panic, and anything it accepts must re-serialize to a parseable
// trace with identical requests (canonical round trip).
func FuzzReadCSV(f *testing.F) {
	f.Add("id,arrival_s,video,disk,viewing_s,vcr\n0,1.5,0,0,600,0\n1,2,1,0,300,1\n")
	f.Add("id,arrival_s,video,disk,viewing_s,vcr\n")
	f.Add("garbage")
	f.Fuzz(func(t *testing.T, data string) {
		tr, err := ReadCSV(strings.NewReader(data))
		if err != nil {
			return
		}
		var buf strings.Builder
		if err := tr.WriteCSV(&buf); err != nil {
			t.Fatalf("accepted trace failed to serialize: %v", err)
		}
		back, err := ReadCSV(strings.NewReader(buf.String()))
		if err != nil {
			t.Fatalf("round trip failed to parse: %v", err)
		}
		if len(back.Requests) != len(tr.Requests) {
			t.Fatalf("round trip changed request count: %d vs %d", len(back.Requests), len(tr.Requests))
		}
		for i := range tr.Requests {
			if back.Requests[i] != tr.Requests[i] {
				t.Fatalf("request %d changed in round trip", i)
			}
		}
	})
}
