// Package workload generates the user-request traces of Section 5.1:
// requests arrive in a Poisson process whose rate changes every 30 minutes
// following a Zipf distribution over time slots peaking nine hours into
// the day, pick a video by Zipf popularity, and watch for a duration
// uniform in [0, 120] minutes.
//
// Everything is deterministic given a seed, so simulations are exactly
// reproducible; the paper averages five seeds and so does the harness.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/catalog"
	"repro/internal/si"
)

// Schedule is a piecewise-constant arrival-rate function over a horizon.
type Schedule struct {
	slotLen si.Seconds
	rates   []float64 // arrivals per second in each slot
}

// NewSchedule builds a schedule directly from per-slot rates.
func NewSchedule(slotLen si.Seconds, rates []float64) Schedule {
	if slotLen <= 0 {
		panic(fmt.Sprintf("workload: non-positive slot length %v", slotLen))
	}
	if len(rates) == 0 {
		panic("workload: empty rate schedule")
	}
	for i, r := range rates {
		if r < 0 || math.IsNaN(r) || math.IsInf(r, 0) {
			panic(fmt.Sprintf("workload: bad rate %v in slot %d", r, i))
		}
	}
	return Schedule{slotLen: slotLen, rates: append([]float64(nil), rates...)}
}

// ZipfDay builds the paper's arrival schedule: the horizon is divided into
// 30-minute slots whose share of total arrivals follows a Zipf(theta)
// distribution over the slots' proximity rank to the peak time. theta = 0
// concentrates arrivals tightly around the peak; theta = 1 spreads them
// uniformly (the paper's convention, after Wolf et al.).
func ZipfDay(total float64, theta float64, peak, horizon si.Seconds) Schedule {
	const slot = si.Seconds(30 * 60)
	if total < 0 {
		panic(fmt.Sprintf("workload: negative total arrivals %v", total))
	}
	if horizon < slot {
		panic(fmt.Sprintf("workload: horizon %v shorter than one slot", horizon))
	}
	nSlots := int(float64(horizon) / float64(slot))

	// Rank slots by distance of their center from the peak; nearest gets
	// rank 1 and the largest Zipf weight. Ties break toward earlier slots.
	type slotDist struct {
		idx  int
		dist float64
	}
	order := make([]slotDist, nSlots)
	for i := range order {
		center := (float64(i) + 0.5) * float64(slot)
		order[i] = slotDist{idx: i, dist: math.Abs(center - float64(peak))}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].dist != order[j].dist {
			return order[i].dist < order[j].dist
		}
		return order[i].idx < order[j].idx
	})
	weights := catalog.ZipfWeights(nSlots, theta)
	rates := make([]float64, nSlots)
	for rank, sd := range order {
		rates[sd.idx] = total * weights[rank] / float64(slot)
	}
	return Schedule{slotLen: slot, rates: rates}
}

// Rate reports the arrival rate (requests per second) at time t. Times
// beyond the horizon report zero: the day is over.
func (s Schedule) Rate(t si.Seconds) float64 {
	if t < 0 {
		return 0
	}
	i := int(float64(t) / float64(s.slotLen))
	if i >= len(s.rates) {
		return 0
	}
	return s.rates[i]
}

// Horizon reports the schedule's total duration.
func (s Schedule) Horizon() si.Seconds {
	return s.slotLen * si.Seconds(len(s.rates))
}

// SlotLen reports the slot duration.
func (s Schedule) SlotLen() si.Seconds { return s.slotLen }

// Total reports the expected number of arrivals over the horizon.
func (s Schedule) Total() float64 {
	sum := 0.0
	for _, r := range s.rates {
		sum += r * float64(s.slotLen)
	}
	return sum
}

// Request is one generated user request.
type Request struct {
	// ID numbers requests in arrival order, from 0.
	ID int

	// Arrival is the request's arrival time.
	Arrival si.Seconds

	// Video is the requested title's id in the library.
	Video int

	// Disk is the disk holding the title.
	Disk int

	// Viewing is how long the user watches before leaving (the paper's
	// uniform 0–120 minutes).
	Viewing si.Seconds

	// VCR marks a request that continues an existing session after a VCR
	// action (fast forward, rewind, seek). The paper's systems treat VCR
	// actions as new requests (Section 1), so a session with VCR activity
	// appears as a chain of requests; the latency of a VCR request is the
	// VCR response time the paper wants minimized.
	VCR bool

	// Rate is the stream's consumption rate; 0 means "the engine's
	// configured CR" (the paper's single-rate regime). Generate never sets
	// it — drivers that want per-title bitrate ladders stamp it after
	// generation, so legacy traces stay byte-identical.
	Rate si.BitRate
}

// Trace is a complete generated workload.
type Trace struct {
	Requests []Request
	Schedule Schedule
}

// MaxViewing is the paper's viewing-time upper bound.
var MaxViewing = si.Minutes(120)

// VCROptions adds VCR activity to a generated trace: each session
// performs fast-forward/rewind/seek actions as a Poisson process over its
// viewing time, and each action ends the current request and issues a new
// one (the paper's model of VCR functions, Section 1).
type VCROptions struct {
	// ActionsPerHour is the mean VCR actions per viewing hour; zero
	// disables VCR activity.
	ActionsPerHour float64
}

// Generate draws a full trace: Poisson arrivals under the schedule
// (exact for piecewise-constant rates, by restarting the exponential draw
// at slot boundaries), titles from the library's popularity distribution,
// and uniform viewing times capped by the title's length.
func Generate(s Schedule, lib *catalog.Library, seed int64) Trace {
	return GenerateVCR(s, lib, seed, VCROptions{})
}

// GenerateVCR is Generate with VCR activity: sessions whose viewing spans
// a VCR action appear as chains of requests, the continuation requests
// marked VCR.
func GenerateVCR(s Schedule, lib *catalog.Library, seed int64, vcr VCROptions) Trace {
	if vcr.ActionsPerHour < 0 {
		panic(fmt.Sprintf("workload: negative VCR rate %v", vcr.ActionsPerHour))
	}
	rng := rand.New(rand.NewSource(seed))
	// VCR splitting uses its own stream so the underlying session process
	// (arrivals, titles, viewing times) is bit-identical with and without
	// VCR activity — only the segmentation differs.
	vcrRng := rand.New(rand.NewSource(seed ^ 0x5eed5eed))
	var reqs []Request
	t := si.Seconds(0)
	horizon := s.Horizon()
	for t < horizon {
		rate := s.Rate(t)
		if rate <= 0 {
			// Skip to the next slot boundary.
			next := (math.Floor(float64(t)/float64(s.slotLen)) + 1) * float64(s.slotLen)
			t = si.Seconds(next)
			continue
		}
		gap := si.Seconds(rng.ExpFloat64() / rate)
		slotEnd := si.Seconds((math.Floor(float64(t)/float64(s.slotLen)) + 1) * float64(s.slotLen))
		if t+gap >= slotEnd {
			// The draw crosses into the next slot; by memorylessness we
			// may simply restart there at the new rate.
			t = slotEnd
			continue
		}
		t += gap
		video := lib.Pick(rng.Float64())
		maxView := MaxViewing
		if l := lib.Video(video).Length; l < maxView {
			maxView = l
		}
		viewing := si.Seconds(rng.Float64()) * maxView

		// Split the session at VCR action instants: each boundary ends
		// the running request and issues a continuation request.
		start := t
		isVCR := false
		for viewing > 0 {
			segment := viewing
			if vcr.ActionsPerHour > 0 {
				draw := si.Seconds(vcrRng.ExpFloat64() / vcr.ActionsPerHour * 3600)
				if draw < 1 {
					draw = 1 // floor out pathological sub-second splits
				}
				if draw < segment {
					segment = draw
				}
			}
			reqs = append(reqs, Request{
				ID:      len(reqs),
				Arrival: start,
				Video:   video,
				Disk:    lib.Placement(video).Disk,
				Viewing: segment,
				VCR:     isVCR,
			})
			start += segment
			viewing -= segment
			isVCR = true
		}
	}
	// VCR continuations were appended inline in session order; arrivals
	// across sessions interleave, so restore global arrival order.
	sort.SliceStable(reqs, func(i, j int) bool { return reqs[i].Arrival < reqs[j].Arrival })
	for i := range reqs {
		reqs[i].ID = i
	}
	return Trace{Requests: reqs, Schedule: s}
}

// PerDisk splits a trace into per-disk sub-traces, preserving order.
func (tr Trace) PerDisk(disks int) [][]Request {
	out := make([][]Request, disks)
	for _, r := range tr.Requests {
		if r.Disk < 0 || r.Disk >= disks {
			panic(fmt.Sprintf("workload: request %d on disk %d outside [0,%d)", r.ID, r.Disk, disks))
		}
		out[r.Disk] = append(out[r.Disk], r)
	}
	return out
}
