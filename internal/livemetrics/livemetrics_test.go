package livemetrics

import (
	"math"
	"testing"

	"repro/internal/catalog"
	"repro/internal/diskmodel"
	"repro/internal/engine"
	"repro/internal/sched"
	"repro/internal/si"
	"repro/internal/workload"
)

// The first two octaves are linear: small values land in their own
// bucket and quantiles are exact.
func TestHistogramLinearRangeExact(t *testing.T) {
	h := NewHistogram(1)
	for v := 0; v < 2*histBucketsPerOctave; v++ {
		h.Record(float64(v))
	}
	if got := h.Quantile(0.5); got != 15 {
		t.Errorf("p50 over 0..31 = %v, want 15", got)
	}
	if got := h.Quantile(1); got != 31 {
		t.Errorf("p100 over 0..31 = %v, want 31", got)
	}
	if got := h.Max(); got != 31 {
		t.Errorf("max = %v, want 31", got)
	}
	if got := h.Mean(); got != 15.5 {
		t.Errorf("mean = %v, want 15.5", got)
	}
}

// Bucket geometry: every value maps to a bucket whose upper bound
// covers it within the advertised ~6% relative error, and bucket
// indices never decrease as values grow.
func TestHistogramBucketGeometry(t *testing.T) {
	prev := -1
	for _, n := range func() []uint64 {
		var ns []uint64
		for n := uint64(0); n < 4096; n++ {
			ns = append(ns, n)
		}
		for shift := 12; shift < 40; shift++ {
			for off := uint64(0); off < 17; off++ {
				ns = append(ns, uint64(1)<<shift+off*(uint64(1)<<shift)/17)
			}
		}
		return ns
	}() {
		i := bucketOf(n)
		if i < prev {
			t.Fatalf("bucketOf(%d) = %d below previous bucket %d", n, i, prev)
		}
		prev = i
		bound := boundOf(i)
		if bound < float64(n) {
			t.Fatalf("boundOf(bucketOf(%d)) = %v, below the value", n, bound)
		}
		if n >= 2*histBucketsPerOctave && bound > float64(n)*(1+1.0/histBucketsPerOctave)+1 {
			t.Fatalf("boundOf(bucketOf(%d)) = %v, over %.0f%% relative error",
				n, bound, 100.0/histBucketsPerOctave)
		}
	}
}

// Quantiles over a wide-range sample stay within one bucket width of
// the true order statistics.
func TestHistogramQuantileAccuracy(t *testing.T) {
	h := NewHistogram(1e-6)
	const n = 10000
	for i := 1; i <= n; i++ {
		h.Record(float64(i) * 1e-4) // 0.1ms .. 1s
	}
	for _, p := range []float64{0.5, 0.9, 0.99, 0.999} {
		exact := math.Ceil(p*n) * 1e-4
		got := h.Quantile(p)
		if got < exact || got > exact*1.08 {
			t.Errorf("Quantile(%v) = %v, want within +8%% of %v", p, got, exact)
		}
	}
}

func TestHistogramEmptyAndClamp(t *testing.T) {
	h := NewHistogram(1e-6)
	if h.Quantile(0.99) != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Error("empty histogram must report zeros")
	}
	h.Record(-5)         // clamps to 0
	h.Record(math.NaN()) // clamps to 0
	h.Record(1e30)       // clamps into the top bucket
	if got := h.Count(); got != 3 {
		t.Fatalf("count = %d, want 3", got)
	}
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("p50 = %v, want 0 (two clamped-to-zero samples)", got)
	}
	// The top bucket's bound is 2^40 units ≈ 1.1e6 s (~13 days).
	if got := h.Quantile(1); got < 1e6 {
		t.Errorf("p100 = %v, want the top bucket's bound (~1.1e6)", got)
	}
}

func TestHistogramRecentRing(t *testing.T) {
	h := NewHistogram(1)
	for i := 0; i < recentSamples+10; i++ {
		h.Record(float64(i))
	}
	recent := h.Recent()
	if len(recent) != recentSamples {
		t.Fatalf("recent holds %d samples, want %d", len(recent), recentSamples)
	}
	for _, v := range recent {
		if v < 10 {
			t.Fatalf("sample %v survived a full ring lap, want overwrite", v)
		}
	}
}

func TestHistogramRecordAllocFree(t *testing.T) {
	h := NewHistogram(1e-6)
	if allocs := testing.AllocsPerRun(1000, func() {
		h.Record(0.0017)
	}); allocs != 0 {
		t.Errorf("Record allocates %v objects/op, want 0", allocs)
	}
}

// captureStream runs a one-request virtual-clock system to obtain a
// real admitted *engine.Stream for driving observer callbacks.
type captureStream struct {
	engine.NopObserver
	st *engine.Stream
}

func (c *captureStream) OnAdmit(disk int, st *engine.Stream, now si.Seconds) { c.st = st }

func admittedStream(t *testing.T) *engine.Stream {
	t.Helper()
	lib, err := catalog.New(catalog.Config{
		Titles: 2, Disks: 1, Spec: diskmodel.Barracuda9LP(), PopularityTheta: 0.271,
	})
	if err != nil {
		t.Fatal(err)
	}
	cap := &captureStream{}
	vc := engine.NewVirtualClock()
	sys, err := engine.New(engine.Config{
		Clock:     vc,
		Allocator: engine.DynamicAllocator{},
		Method:    sched.NewMethod(sched.RoundRobin),
		Spec:      diskmodel.Barracuda9LP(),
		CR:        si.BitRate(1.5 * si.Mega),
		Alpha:     1,
		TLog:      si.Minutes(40),
		Library:   lib,
		Seed:      1,
		Observer:  cap,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.OnArrival(workload.Request{ID: 0, Arrival: 0, Video: 0, Disk: 0, Viewing: si.Seconds(60)})
	vc.Run(si.Seconds(30))
	if cap.st == nil {
		t.Fatal("no stream admitted")
	}
	return cap.st
}

// The collector's observer callbacks are the serving path's hot loop:
// they must not allocate. This is the pin the package doc promises.
func TestCollectorHotPathAllocFree(t *testing.T) {
	st := admittedStream(t)
	c := NewCollector(2)
	req := workload.Request{ID: 7, Disk: 1}
	if allocs := testing.AllocsPerRun(1000, func() {
		c.OnAdmit(0, st, 10)
		c.OnDefer(1, 10)
		c.OnReject(1, req, engine.RejectCapacity, 10)
		c.OnFillComplete(0, st, si.Bits(8e6), 11)
		c.OnStart(0, st, 11)
		c.OnStall(1, 11)
		c.OnUnderrun(0, st.ID(), 12, 0.25)
		c.OnDepart(0, st, 13)
	}); allocs != 0 {
		t.Errorf("observer callbacks allocate %v objects/op, want 0", allocs)
	}
}

// Snapshot must aggregate per-disk cells into consistent totals and
// convert the startup histogram into millisecond quantiles.
func TestCollectorSnapshot(t *testing.T) {
	st := admittedStream(t)
	c := NewCollector(2)
	c.OnAdmit(0, st, 10)
	c.OnAdmit(0, st, 10)
	c.OnAdmit(1, st, 10)
	c.OnDefer(1, 10)
	c.OnReject(1, workload.Request{}, engine.RejectCapacity, 10)
	c.OnFillComplete(0, st, si.Bits(8e6), 11) // 1e6 bytes
	c.OnStart(0, st, st.AdmittedAt()+si.Seconds(0.5))
	c.OnUnderrun(1, st.ID(), 12, 0.25)
	c.OnDepart(0, st, 13)

	s := c.Snapshot()
	if s.Totals.Admitted != 3 || s.PerDisk[0].Admitted != 2 || s.PerDisk[1].Admitted != 1 {
		t.Errorf("admitted totals wrong: %+v", s)
	}
	if s.Totals.Deferred != 1 || s.Totals.Rejected != 1 || s.Totals.Departed != 1 {
		t.Errorf("defer/reject/depart totals wrong: %+v", s.Totals)
	}
	if s.Totals.Fills != 1 || s.Totals.FillBytes != 1e6 {
		t.Errorf("fill accounting wrong: fills=%d bytes=%d", s.Totals.Fills, s.Totals.FillBytes)
	}
	if s.Totals.Underruns != 1 || math.Abs(s.Totals.StarvedMS-250) > 1e-6 {
		t.Errorf("underrun accounting wrong: %d / %v ms", s.Totals.Underruns, s.Totals.StarvedMS)
	}
	if s.Totals.Starts != 1 {
		t.Errorf("starts = %d, want 1", s.Totals.Starts)
	}
	// 0.5s startup latency → ~500ms, within the histogram's bucket width.
	if s.StartupP99MS < 500 || s.StartupP99MS > 540 {
		t.Errorf("startup p99 = %v ms, want ~500", s.StartupP99MS)
	}
	if s.StartupMaxMS < 499 || s.StartupMaxMS > 501 {
		t.Errorf("startup max = %v ms, want ~500", s.StartupMaxMS)
	}
}
