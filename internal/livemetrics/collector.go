package livemetrics

import (
	"sync/atomic"

	"repro/internal/engine"
	"repro/internal/si"
	"repro/internal/workload"
)

// DiskCounters is one disk shard's slice of the live tallies. Every
// field is atomic: the owning shard's observer callbacks are the only
// writers, so plain Add is uncontended, and readers (the stats line,
// the STATS dump, the selftest summary) merge across shards without
// taking any shard's engine lock. The trailing pad keeps two shards'
// counters off one cache line.
type DiskCounters struct {
	Admitted  atomic.Int64
	Deferred  atomic.Int64
	Rejected  atomic.Int64
	Departed  atomic.Int64
	Starts    atomic.Int64
	Fills     atomic.Int64
	FillBytes atomic.Int64
	Underruns atomic.Int64
	// StarvedMicros accumulates underrun gaps in engine microseconds.
	StarvedMicros atomic.Int64
	Stalls        atomic.Int64
	// Sharing-layer counters (zero when the server runs without the
	// sharing front end). Leads counts viewers that opened a fresh disk
	// stream, Merges viewers that joined an existing one, CacheHits
	// viewers served any data from the pinned prefix (merges replaying a
	// gap and cache-only viewers alike), CacheHitBytes that data, and
	// PeakFanout the most viewers ever riding one stream.
	Leads         atomic.Int64
	Merges        atomic.Int64
	CacheHits     atomic.Int64
	CacheHitBytes atomic.Int64
	PeakFanout    atomic.Int64
	// JitterCompMicros is a gauge, not a tally: the wall-clock shard's
	// current jitter compensation (how early it aims its timers to cancel
	// observed wakeup lag) in wall microseconds. The serving path samples
	// it on every stats snapshot; 0 means compensation is off or the
	// shard has seen no lag.
	JitterCompMicros atomic.Int64
	// QoE counters (ladder mode). Downgrades counts arrivals stepped
	// down their title's bitrate ladder; StarvedStreams counts departed
	// streams that suffered at least one underrun (the numerator of the
	// starvation probability, with Departed the denominator); RungServed
	// tallies admissions by delivered ladder rung (0 = full quality;
	// rungs past the array clamp into the last cell).
	Downgrades     atomic.Int64
	StarvedStreams atomic.Int64
	RungServed     [maxRungs]atomic.Int64
	// Adaptation counters (zero unless mid-stream bitrate adaptation is
	// on). SwitchesUp / SwitchesDown count rate-map steps; RungMillis
	// accumulates delivered watch time per ladder rung in engine
	// milliseconds, accrued at every switch and departure, so the
	// time-weighted delivered rung can be derived from a stats dump.
	SwitchesUp   atomic.Int64
	SwitchesDown atomic.Int64
	RungMillis   [maxRungs]atomic.Int64
	_            [1]int64
}

// maxRungs bounds the per-rung admission tally; real ladders are short
// (a handful of encodings per title).
const maxRungs = 4

// bumpMax raises a monotone atomic gauge to at least v. The observer
// callbacks are the cell's only writers (single-threaded per shard), so
// a load-check-store is race-free.
func bumpMax(g *atomic.Int64, v int64) {
	if v > g.Load() {
		g.Store(v)
	}
}

// Collector implements engine.Observer with per-disk atomic counters
// and a startup-latency histogram — the live twin of the simulator's
// result collector. It is safe to drive from a sharded WallClock: each
// disk's callbacks write only that disk's counter cell, and the
// histogram is lock-free.
//
// Compose it with a driver's own observer through engine.Observers so
// instrumentation rides the same callbacks the driver already handles:
//
//	engine.Observers{collector, server}
type Collector struct {
	engine.NopObserver

	disks []DiskCounters

	// Startup records admission-to-first-byte latency in engine
	// seconds: OnStart fires at a stream's first completed fill, and
	// the stream carries its admission instant.
	Startup *Histogram

	// rungOf maps an admitted stream's (video, delivered rate) to its
	// ladder rung index for the RungServed tally; nil (no ladder
	// catalog) disables per-rung counting.
	rungOf func(video int, rate si.BitRate) int
}

// NewCollector returns a collector for a system of the given disk
// count.
func NewCollector(disks int) *Collector {
	return &Collector{
		disks:   make([]DiskCounters, disks),
		Startup: NewHistogram(1e-6),
	}
}

// SetRungOf installs the ladder-rung resolver behind the RungServed
// tally (catalog.Library.RungOf, typically). Set it before the system
// processes arrivals; nil disables per-rung counting.
func (c *Collector) SetRungOf(fn func(video int, rate si.BitRate) int) { c.rungOf = fn }

// Disk returns disk i's counter cell (for tests and per-disk dumps).
func (c *Collector) Disk(i int) *DiskCounters { return &c.disks[i] }

// Disks reports the number of per-disk cells.
func (c *Collector) Disks() int { return len(c.disks) }

// OnAdmit counts an admission on the stream's disk, tallying the
// delivered ladder rung when a resolver is installed.
func (c *Collector) OnAdmit(disk int, st *engine.Stream, now si.Seconds) {
	d := &c.disks[disk]
	d.Admitted.Add(1)
	if c.rungOf != nil {
		if r := c.rungOf(st.Req().Video, st.Rate()); r >= 0 {
			if r >= maxRungs {
				r = maxRungs - 1
			}
			d.RungServed[r].Add(1)
		}
	}
}

// OnDefer counts one blocked admission attempt (Fig. 5 enforcement).
func (c *Collector) OnDefer(disk int, now si.Seconds) {
	c.disks[disk].Deferred.Add(1)
}

// OnReject counts an arrival turned away outright.
func (c *Collector) OnReject(disk int, req workload.Request, reason engine.RejectReason, now si.Seconds) {
	c.disks[disk].Rejected.Add(1)
}

// OnFillComplete counts a completed disk read and its payload bytes.
func (c *Collector) OnFillComplete(disk int, st *engine.Stream, fill si.Bits, now si.Seconds) {
	d := &c.disks[disk]
	d.Fills.Add(1)
	d.FillBytes.Add(int64(fill.Bytes()))
}

// OnStart counts a stream's first completed fill and records its
// admission-to-first-byte latency in the startup histogram.
func (c *Collector) OnStart(disk int, st *engine.Stream, now si.Seconds) {
	c.disks[disk].Starts.Add(1)
	c.Startup.Record(float64(now - st.AdmittedAt()))
}

// OnStall counts a fill that could not reserve pool memory.
func (c *Collector) OnStall(disk int, now si.Seconds) {
	c.disks[disk].Stalls.Add(1)
}

// OnUnderrun counts a buffer that ran dry and accumulates the gap.
func (c *Collector) OnUnderrun(disk int, id int, now, gap si.Seconds) {
	d := &c.disks[disk]
	d.Underruns.Add(1)
	d.StarvedMicros.Add(int64(gap * 1e6))
}

// OnDowngrade counts an arrival stepped down its title's ladder.
func (c *Collector) OnDowngrade(disk int, req workload.Request, from, to si.BitRate, now si.Seconds) {
	c.disks[disk].Downgrades.Add(1)
}

// OnDepart counts a stream finishing and freeing its capacity, and the
// starvation-probability numerator when the stream ever ran dry. The
// stream's final rate epoch lands in the delivered-rung watch tally.
func (c *Collector) OnDepart(disk int, st *engine.Stream, now si.Seconds) {
	d := &c.disks[disk]
	d.Departed.Add(1)
	if st.Starved() {
		d.StarvedStreams.Add(1)
	}
	c.accrueRung(d, st.Req().Video, st.Rate(), now-st.RateSince())
}

// OnRateSwitch counts a mid-stream rate-map step and closes the
// stream's previous rate epoch: the engine fires the callback before it
// advances RateSince, so the elapsed epoch is still readable here.
func (c *Collector) OnRateSwitch(disk int, st *engine.Stream, from, to si.BitRate, now si.Seconds) {
	d := &c.disks[disk]
	if to > from {
		d.SwitchesUp.Add(1)
	} else {
		d.SwitchesDown.Add(1)
	}
	c.accrueRung(d, st.Req().Video, from, now-st.RateSince())
}

// accrueRung adds one closed rate epoch to the delivered-rung watch
// tally.
func (c *Collector) accrueRung(d *DiskCounters, video int, rate si.BitRate, dur si.Seconds) {
	if c.rungOf == nil || dur <= 0 {
		return
	}
	if r := c.rungOf(video, rate); r >= 0 {
		if r >= maxRungs {
			r = maxRungs - 1
		}
		d.RungMillis[r].Add(int64(dur * 1e3))
	}
}

// OnLead counts a viewer leading a fresh disk stream (share.Observer).
func (c *Collector) OnLead(disk int, now si.Seconds) {
	c.disks[disk].Leads.Add(1)
}

// OnMerge counts a viewer joining an existing shared stream; a non-zero
// cacheBits gap replay also counts as a cache hit (share.Observer).
func (c *Collector) OnMerge(disk int, cacheBits si.Bits, fanout int, now si.Seconds) {
	d := &c.disks[disk]
	d.Merges.Add(1)
	if cacheBits > 0 {
		d.CacheHits.Add(1)
		d.CacheHitBytes.Add(int64(cacheBits.Bytes()))
	}
	bumpMax(&d.PeakFanout, int64(fanout))
}

// OnCacheServe counts a viewer served entirely from the pinned prefix
// (share.Observer).
func (c *Collector) OnCacheServe(disk int, bits si.Bits, now si.Seconds) {
	d := &c.disks[disk]
	d.CacheHits.Add(1)
	d.CacheHitBytes.Add(int64(bits.Bytes()))
}

// DiskSnapshot is one disk's counters at a point in time, in stats-dump
// form. Field semantics are documented operator-facing in SERVING.md.
type DiskSnapshot struct {
	Admitted  int64 `json:"admitted"`
	Deferred  int64 `json:"deferred"`
	Rejected  int64 `json:"rejected"`
	Departed  int64 `json:"departed"`
	Starts    int64 `json:"starts"`
	Fills     int64 `json:"fills"`
	FillBytes int64 `json:"fill_bytes"`
	Underruns int64 `json:"underruns"`
	// StarvedMS is the cumulative underrun gap in engine milliseconds.
	StarvedMS float64 `json:"starved_ms"`
	Stalls    int64   `json:"stalls"`
	// Sharing-layer fields; all zero when sharing is off.
	Leads         int64 `json:"leads"`
	Merges        int64 `json:"merges"`
	CacheHits     int64 `json:"cache_hits"`
	CacheHitBytes int64 `json:"cache_hit_bytes"`
	PeakFanout    int64 `json:"peak_fanout"`
	// JitterCompMS is the shard's current timer jitter compensation in
	// wall milliseconds (a gauge; the totals row carries the maximum
	// across disks).
	JitterCompMS float64 `json:"jitter_comp_ms"`
	// QoE fields (ladder mode; all zero otherwise). StarvationProb is
	// StarvedStreams over Departed.
	Downgrades     int64   `json:"downgrades"`
	StarvedStreams int64   `json:"starved_streams"`
	StarvationProb float64 `json:"starvation_prob"`
	// Adaptation fields (zero unless mid-stream adaptation is on).
	SwitchesUp   int64 `json:"switches_up"`
	SwitchesDown int64 `json:"switches_down"`
	// RungServed tallies admissions by delivered ladder rung, full
	// quality first. Omitted when no ladder catalog is installed.
	RungServed []int64 `json:"rung_served,omitempty"`
	// RungMS is delivered watch time per ladder rung in engine
	// milliseconds, full quality first (the time-weighted delivered
	// rung's raw data). Omitted when no ladder catalog is installed.
	RungMS []float64 `json:"rung_ms,omitempty"`
}

func (s *DiskSnapshot) add(o DiskSnapshot) {
	s.Admitted += o.Admitted
	s.Deferred += o.Deferred
	s.Rejected += o.Rejected
	s.Departed += o.Departed
	s.Starts += o.Starts
	s.Fills += o.Fills
	s.FillBytes += o.FillBytes
	s.Underruns += o.Underruns
	s.StarvedMS += o.StarvedMS
	s.Stalls += o.Stalls
	s.Leads += o.Leads
	s.Merges += o.Merges
	s.CacheHits += o.CacheHits
	s.CacheHitBytes += o.CacheHitBytes
	if o.PeakFanout > s.PeakFanout {
		s.PeakFanout = o.PeakFanout
	}
	if o.JitterCompMS > s.JitterCompMS {
		s.JitterCompMS = o.JitterCompMS
	}
	s.Downgrades += o.Downgrades
	s.StarvedStreams += o.StarvedStreams
	s.SwitchesUp += o.SwitchesUp
	s.SwitchesDown += o.SwitchesDown
	if s.Departed > 0 {
		s.StarvationProb = float64(s.StarvedStreams) / float64(s.Departed)
	}
	if o.RungServed != nil {
		if s.RungServed == nil {
			s.RungServed = make([]int64, len(o.RungServed))
		}
		for i, v := range o.RungServed {
			s.RungServed[i] += v
		}
	}
	if o.RungMS != nil {
		if s.RungMS == nil {
			s.RungMS = make([]float64, len(o.RungMS))
		}
		for i, v := range o.RungMS {
			s.RungMS[i] += v
		}
	}
}

// Snapshot is the collector's aggregated state: totals across disks,
// the per-disk breakdown, and startup-latency quantiles in engine
// milliseconds.
type Snapshot struct {
	Totals       DiskSnapshot   `json:"totals"`
	StartupP50MS float64        `json:"startup_p50_ms"`
	StartupP99MS float64        `json:"startup_p99_ms"`
	StartupMaxMS float64        `json:"startup_max_ms"`
	PerDisk      []DiskSnapshot `json:"disks,omitempty"`
}

// Snapshot aggregates the counters. It allocates (the per-disk slice)
// and is meant for the reporting path, not observer callbacks.
func (c *Collector) Snapshot() Snapshot {
	snap := Snapshot{PerDisk: make([]DiskSnapshot, len(c.disks))}
	for i := range c.disks {
		d := &c.disks[i]
		snap.PerDisk[i] = DiskSnapshot{
			Admitted:       d.Admitted.Load(),
			Deferred:       d.Deferred.Load(),
			Rejected:       d.Rejected.Load(),
			Departed:       d.Departed.Load(),
			Starts:         d.Starts.Load(),
			Fills:          d.Fills.Load(),
			FillBytes:      d.FillBytes.Load(),
			Underruns:      d.Underruns.Load(),
			StarvedMS:      float64(d.StarvedMicros.Load()) / 1e3,
			Stalls:         d.Stalls.Load(),
			Leads:          d.Leads.Load(),
			Merges:         d.Merges.Load(),
			CacheHits:      d.CacheHits.Load(),
			CacheHitBytes:  d.CacheHitBytes.Load(),
			PeakFanout:     d.PeakFanout.Load(),
			JitterCompMS:   float64(d.JitterCompMicros.Load()) / 1e3,
			Downgrades:     d.Downgrades.Load(),
			StarvedStreams: d.StarvedStreams.Load(),
			SwitchesUp:     d.SwitchesUp.Load(),
			SwitchesDown:   d.SwitchesDown.Load(),
		}
		if ds := &snap.PerDisk[i]; ds.Departed > 0 {
			ds.StarvationProb = float64(ds.StarvedStreams) / float64(ds.Departed)
		}
		if c.rungOf != nil {
			rungs := make([]int64, maxRungs)
			ms := make([]float64, maxRungs)
			for r := range rungs {
				rungs[r] = d.RungServed[r].Load()
				ms[r] = float64(d.RungMillis[r].Load())
			}
			snap.PerDisk[i].RungServed = rungs
			snap.PerDisk[i].RungMS = ms
		}
		snap.Totals.add(snap.PerDisk[i])
	}
	snap.StartupP50MS = c.Startup.Quantile(0.50) * 1e3
	snap.StartupP99MS = c.Startup.Quantile(0.99) * 1e3
	snap.StartupMaxMS = c.Startup.Max() * 1e3
	return snap
}
