// Package livemetrics instruments the live serving path. Where
// internal/metrics accumulates a simulation's results single-threaded
// under the virtual clock, this package's collectors are written from
// the wall clock's concurrent shard callbacks: every counter is an
// atomic per-disk cell (padded so neighbouring shards never share a
// cache line) and every latency observation lands in a lock-free
// log-linear histogram bucket plus a fixed ring of recent raw samples.
//
// The hot-path contract is zero allocations and no locks: an Observer
// callback does a handful of atomic adds and returns. Snapshots — the
// vodserver stats line, the STATS control-command dump, the loopback
// benchmark's report — pay the aggregation cost instead, off the
// serving path. TestCollectorHotPathAllocFree pins the contract, and
// the bench-smoke CI gate (+10% allocs/op over the committed baseline)
// keeps the instrumented serving path honest end to end.
package livemetrics

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// histBucketsPerOctave subdivides each power-of-two value range: 16
// sub-buckets bound the quantile error at ~6%.
const histBucketsPerOctave = 16

// histOctaves spans the histogram's dynamic range: with a 1µs unit,
// 40 octaves reach ~13 days. Values beyond clamp into the last bucket.
const histOctaves = 40

// histBuckets is the total bucket count: a linear run for the first two
// octaves (values 0..31 units) at indices 0..31, then 16 log-linear
// buckets per octave o >= 6 starting at index (o-4)*16.
const histBuckets = (histOctaves - 3) * histBucketsPerOctave

// recentSamples is the size of the recent-sample ring each histogram
// keeps alongside its buckets.
const recentSamples = 256

// Histogram is a lock-free log-linear histogram: recording is a single
// atomic increment into a bucket whose width is 1/16th of the value's
// octave, so quantiles are exact to ~6% across the full range. A ring
// buffer of the most recent raw samples rides along for exact
// small-count percentiles in stats dumps.
//
// Values are float64 multiples of the histogram's unit (for latencies,
// the convention is seconds with a 1e-6 unit — microsecond resolution
// at the bottom of the range). Record is safe for concurrent use;
// Snapshot may run concurrently with writers and sees a consistent-
// enough view for reporting (each bucket is read atomically).
type Histogram struct {
	unit    float64
	count   atomic.Int64
	sum     atomic.Int64 // in units, for the mean
	max     atomic.Int64 // in units
	next    atomic.Int64 // ring write cursor
	buckets [histBuckets]atomic.Int64
	recent  [recentSamples]atomic.Uint64 // math.Float64bits of the value
}

// NewHistogram returns a histogram whose bottom bucket is one unit wide
// (e.g. unit 1e-6 buckets seconds at microsecond resolution).
func NewHistogram(unit float64) *Histogram {
	if unit <= 0 {
		panic("livemetrics: non-positive histogram unit")
	}
	return &Histogram{unit: unit}
}

// bucketOf maps a value in units to its bucket index.
func bucketOf(n uint64) int {
	if n < 2*histBucketsPerOctave {
		return int(n)
	}
	o := bits.Len64(n) // n >= 32 → o >= 6
	// Top 5 bits of n: bit o-1 is implicit, the next 4 pick the
	// sub-bucket within the octave.
	sub := (n >> (o - 5)) & (histBucketsPerOctave - 1)
	idx := (o-4)*histBucketsPerOctave + int(sub)
	if idx >= histBuckets {
		idx = histBuckets - 1
	}
	return idx
}

// boundOf reports the upper bound, in units, of bucket i — the value
// Quantile reports for ranks landing in it.
func boundOf(i int) float64 {
	if i < 2*histBucketsPerOctave {
		return float64(i)
	}
	o := i/histBucketsPerOctave + 4
	sub := i % histBucketsPerOctave
	return float64(uint64(histBucketsPerOctave+sub+1) << (o - 5))
}

// Record adds one observation. It never allocates and never blocks.
func (h *Histogram) Record(v float64) {
	if v < 0 || math.IsNaN(v) {
		v = 0
	}
	n := uint64(v / h.unit)
	h.buckets[bucketOf(n)].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(n))
	for {
		old := h.max.Load()
		if int64(n) <= old || h.max.CompareAndSwap(old, int64(n)) {
			break
		}
	}
	slot := (h.next.Add(1) - 1) % recentSamples
	h.recent[slot].Store(math.Float64bits(v))
}

// Count reports the number of recorded observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Mean reports the average observation, or 0 when empty.
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) * h.unit / float64(n)
}

// Max reports the largest observation seen, rounded down to the unit.
func (h *Histogram) Max() float64 { return float64(h.max.Load()) * h.unit }

// Quantile reports an upper bound for the p'th quantile (p in [0, 1]):
// the upper edge of the bucket holding that rank, exact to the bucket's
// ~6% width. With no observations it reports 0.
func (h *Histogram) Quantile(p float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(p * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		if cum >= rank {
			return boundOf(i) * h.unit
		}
	}
	return h.Max()
}

// Recent returns up to recentSamples of the latest raw observations, in
// no particular order. The slice is freshly allocated — snapshot path
// only.
func (h *Histogram) Recent() []float64 {
	n := h.count.Load()
	if n > recentSamples {
		n = recentSamples
	}
	out := make([]float64, 0, n)
	for i := int64(0); i < n; i++ {
		out = append(out, math.Float64frombits(h.recent[i].Load()))
	}
	return out
}
