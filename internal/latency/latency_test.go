package latency

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/diskmodel"
	"repro/internal/sched"
	"repro/internal/si"
)

func TestWorstRoundRobin(t *testing.T) {
	// Eq. 2: 2·DL + BS/TR with easy numbers: DL = 10 ms, BS = 120 Mbit at
	// 120 Mbps -> 1 s transfer.
	got := Worst(sched.NewMethod(sched.RoundRobin), si.Mbps(120), 10*si.Millisecond, si.Megabits(120), 40)
	if math.Abs(float64(got)-1.020) > 1e-12 {
		t.Errorf("IL_RR = %v, want 1.020s", got)
	}
}

func TestWorstSweep(t *testing.T) {
	// Eq. 3 with n = 3: 2·3·(DL + x) + DL + x = 7·(DL + x) where
	// DL = 10 ms, x = 0.1 s.
	got := Worst(sched.NewMethod(sched.Sweep), si.Mbps(120), 10*si.Millisecond, si.Megabits(12), 3)
	want := 7 * 0.110
	if math.Abs(float64(got)-want) > 1e-12 {
		t.Errorf("IL_Sweep = %v, want %v", got, want)
	}
}

func TestWorstGSS(t *testing.T) {
	// Eq. 4 with g = 8: 16·(DL + x).
	got := Worst(sched.NewMethod(sched.GSS), si.Mbps(120), 10*si.Millisecond, si.Megabits(12), 40)
	want := 16 * 0.110
	if math.Abs(float64(got)-want) > 1e-12 {
		t.Errorf("IL_GSS = %v, want %v", got, want)
	}
	// g caps at n when the system holds fewer requests than one group.
	got = Worst(sched.NewMethod(sched.GSS), si.Mbps(120), 10*si.Millisecond, si.Megabits(12), 3)
	want = 6 * 0.110
	if math.Abs(float64(got)-want) > 1e-12 {
		t.Errorf("IL_GSS(n=3) = %v, want %v", got, want)
	}
}

func TestWorstClampsN(t *testing.T) {
	m := sched.NewMethod(sched.Sweep)
	if got, want := Worst(m, si.Mbps(120), 1, 0, 0), Worst(m, si.Mbps(120), 1, 0, 1); got != want {
		t.Errorf("n = 0 should clamp to 1: %v vs %v", got, want)
	}
}

func TestWorstPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: want panic", name)
			}
		}()
		f()
	}
	mustPanic("bad method", func() {
		Worst(sched.Method{Kind: sched.GSS}, si.Mbps(120), 1, 1, 1)
	})
	mustPanic("zero dl", func() {
		Worst(sched.NewMethod(sched.RoundRobin), si.Mbps(120), 0, 1, 1)
	})
	mustPanic("negative size", func() {
		Worst(sched.NewMethod(sched.RoundRobin), si.Mbps(120), 1, -1, 1)
	})
}

// Property: initial latency is strictly increasing in buffer size for all
// methods — the linearity observation of Section 2.2.
func TestWorstMonotoneInSize(t *testing.T) {
	spec := diskmodel.Barracuda9LP()
	f := func(kindRaw, nRaw uint8, a, b uint32) bool {
		m := sched.NewMethod(sched.Kinds[int(kindRaw)%3])
		n := 1 + int(nRaw)%79
		s1, s2 := si.Bits(a), si.Bits(b)
		if s1 > s2 {
			s1, s2 = s2, s1
		}
		dl := m.WorstDL(spec, n)
		return Worst(m, spec.TransferRate, dl, s1, n) <= Worst(m, spec.TransferRate, dl, s2, n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: linearity in size — IL(a+b) − IL(b) is the transfer-time
// slope times a (times the method's service-count factor).
func TestWorstLinearity(t *testing.T) {
	spec := diskmodel.Barracuda9LP()
	m := sched.NewMethod(sched.Sweep)
	n := 10
	dl := m.WorstDL(spec, n)
	base := Worst(m, spec.TransferRate, dl, 0, n)
	slope := float64(Worst(m, spec.TransferRate, dl, si.Megabits(1), n)-base) / 1e6
	f := func(raw uint32) bool {
		size := si.Bits(raw)
		want := float64(base) + slope*float64(size)
		got := float64(Worst(m, spec.TransferRate, dl, size, n))
		return math.Abs(got-want) <= 1e-9*math.Max(1, want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWorstFor(t *testing.T) {
	spec := diskmodel.Barracuda9LP()
	for _, k := range sched.Kinds {
		m := sched.NewMethod(k)
		got := WorstFor(m, spec, si.Megabits(10), 20)
		want := Worst(m, spec.TransferRate, m.WorstDL(spec, 20), si.Megabits(10), 20)
		if got != want {
			t.Errorf("%v: WorstFor = %v, want %v", m, got, want)
		}
	}
}
