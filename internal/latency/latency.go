// Package latency implements the worst-case initial-latency equations of
// Section 2.2 (Eqs. 2–4). Initial latency is the duration between a
// request's arrival and the arrival of its first video data in server
// memory; each scheduling method bounds it differently, but in every case
// it is linear in the buffer size — the observation that motivates
// minimizing buffers.
package latency

import (
	"fmt"

	"repro/internal/diskmodel"
	"repro/internal/sched"
	"repro/internal/si"
)

// Worst returns the worst-case initial latency of a scheduling method when
// n requests are in service and each service fills a buffer of the given
// size. dl must be the method's per-service worst disk latency for n
// (Method.WorstDL provides it); tr is the disk transfer rate.
//
//	Round-Robin (BubbleUp):  2·DL + BS/TR                       (Eq. 2)
//	Sweep*:                  2·n·(DL + BS/TR) + DL + BS/TR      (Eq. 3)
//	GSS*:                    2·g·(DL + BS/TR)                   (Eq. 4)
//
// For Eq. 2 the first DL-plus-transfer term is the service in execution
// that BubbleUp must let finish and the second DL is the new request's own
// seek; the paper folds them into 2·DL + BS/TR. For GSS the group size g
// caps at n (fewer requests than one group holds means a sweep of n).
func Worst(m sched.Method, tr si.BitRate, dl si.Seconds, size si.Bits, n int) si.Seconds {
	if err := m.Validate(); err != nil {
		panic(err)
	}
	if n < 1 {
		n = 1
	}
	if size < 0 || dl <= 0 || tr <= 0 {
		panic(fmt.Sprintf("latency: invalid inputs size=%v dl=%v tr=%v", size, dl, tr))
	}
	service := dl + tr.TimeToTransfer(size)
	switch m.Kind {
	case sched.RoundRobin:
		return 2*dl + tr.TimeToTransfer(size)
	case sched.Sweep:
		return 2*si.Seconds(n)*service + service
	default: // GSS
		g := m.Group
		if g > n {
			g = n
		}
		return 2 * si.Seconds(g) * service
	}
}

// WorstFor is the convenience form used by the experiment harness: it
// derives the method's worst disk latency from the disk spec itself.
func WorstFor(m sched.Method, spec diskmodel.Spec, size si.Bits, n int) si.Seconds {
	return Worst(m, spec.TransferRate, m.WorstDL(spec, n), size, n)
}
